"""Service-level agreement: the p95 tail-latency target (Eq. 5).

The paper fixes the SLA to the p95 tail latency measured for the BASE
deployment (largest variant, no MIG partitioning) and never relaxes it when
Clover partitions the GPUs — "the same p95 tail latency from the base case
is continued to be used as an SLA constraint".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SlaPolicy"]


@dataclass(frozen=True)
class SlaPolicy:
    """p95 tail-latency SLA with the paper's semantics."""

    p95_target_ms: float

    def __post_init__(self) -> None:
        if self.p95_target_ms <= 0:
            raise ValueError(
                f"SLA target must be positive, got {self.p95_target_ms}"
            )

    def is_met(self, p95_ms: float) -> bool:
        """Whether a measured/estimated p95 satisfies the SLA."""
        return p95_ms <= self.p95_target_ms

    def violation_factor(self, p95_ms: float) -> float:
        """``L / L_tail``: 1.0 at the boundary, > 1 when violating.

        This is the quantity the SA energy function (Eq. 6) penalizes by:
        ``h = -f * min(1, L_tail / L)``.
        """
        return p95_ms / self.p95_target_ms

    def sa_penalty(self, p95_ms: float) -> float:
        """``min(1, L_tail / L)`` — the Eq. 6 smooth SLA penalty multiplier."""
        if p95_ms <= 0:
            return 1.0
        return min(1.0, self.p95_target_ms / p95_ms)

    def headroom_ms(self, p95_ms: float) -> float:
        """Slack to the target (negative when violating)."""
        return self.p95_target_ms - p95_ms
