"""Discrete-event simulation of the Clover serving pipeline.

Simulates the producer → FIFO queue → consumer → instances path of the
paper's load balancer exactly: requests are served strictly in arrival
order, and the request at the head of the queue goes to whichever service
instance becomes free first (instances "notify the consumer" on completion).

With that discipline, the instance that serves request *k* is always the one
with the earliest next-free time, so the simulation reduces to one min-heap
of instance free-times — no explicit event calendar needed.  The per-request
Python loop is the hot path; everything around it (jitter sampling, result
assembly) is vectorized.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.serving.instance import DEFAULT_JITTER_CV, sample_jitter
from repro.serving.requests import RequestBatch
from repro.utils.rng import as_generator

__all__ = ["simulate_fifo"]


def simulate_fifo(
    arrivals_s: np.ndarray,
    mean_service_s: np.ndarray,
    jitter_cv: float = DEFAULT_JITTER_CV,
    rng: int | np.random.Generator | None = None,
) -> RequestBatch:
    """Simulate a FIFO multi-instance service; returns the request batch.

    Parameters
    ----------
    arrivals_s:
        Sorted request arrival times in seconds.
    mean_service_s:
        Mean service time of each instance (length = number of instances).
        Heterogeneous values model mixed-quality variants on mixed slices.
    jitter_cv:
        Coefficient of variation of the multiplicative service-time jitter.
    rng:
        Seed or generator for the jitter stream.

    Notes
    -----
    FIFO with earliest-free-instance dispatch means a *slow* instance can
    pick up a request that a fast instance would have finished sooner — this
    is faithful to the notify-based consumer in the paper, and it is why
    hosting one oversized variant on a tiny slice can drag the p95 of the
    whole service.
    """
    arrivals = np.asarray(arrivals_s, dtype=np.float64)
    service = np.asarray(mean_service_s, dtype=np.float64)
    if service.ndim != 1 or service.size == 0:
        raise ValueError("mean_service_s must be a non-empty 1-D array")
    if np.any(service <= 0):
        raise ValueError("all mean service times must be positive")
    if arrivals.ndim != 1:
        raise ValueError("arrivals_s must be a 1-D array")
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrivals_s must be sorted non-decreasingly")

    n = arrivals.size
    m = service.size
    jitter = sample_jitter(n, jitter_cv, as_generator(rng))

    start = np.empty(n, dtype=np.float64)
    finish = np.empty(n, dtype=np.float64)
    assigned = np.empty(n, dtype=np.int64)

    # Min-heap of (next_free_time, instance_index); ties resolve to the
    # lowest index, which keeps the simulation fully deterministic.
    free_heap: list[tuple[float, int]] = [(0.0, i) for i in range(m)]
    heapq.heapify(free_heap)
    heappush, heappop = heapq.heappush, heapq.heappop

    svc_means = service.tolist()
    arr_list = arrivals.tolist()
    jit_list = jitter.tolist()
    for k in range(n):
        free_t, i = heappop(free_heap)
        t = arr_list[k]
        s = t if t > free_t else free_t
        f = s + svc_means[i] * jit_list[k]
        start[k] = s
        finish[k] = f
        assigned[k] = i
        heappush(free_heap, (f, i))

    return RequestBatch(
        arrival_s=arrivals,
        start_s=start,
        finish_s=finish,
        instance_index=assigned,
    )
