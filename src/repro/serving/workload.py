"""Poisson user-query workload (the paper's standard methodology).

The paper models user queries as a Poisson process whose rate is chosen so
that the BASE deployment (largest variant, unpartitioned GPUs) runs with
"neither resource starvation nor idle GPUs".  :func:`default_rate` encodes
that sizing rule: a target utilization of the BASE configuration's aggregate
service capacity.

Real demand is not stationary — users sleep, and the geo-diurnal demand
layer (:mod:`repro.demand`) produces time-varying rates.
:class:`NonstationaryPoissonWorkload` samples such a process by *thinning*
(Lewis & Shedler): draw a homogeneous Poisson process at an envelope rate
``max_rate_per_s`` and keep each arrival at time ``t`` with probability
``rate(t) / max_rate_per_s``.  The kept points are exactly a nonhomogeneous
Poisson process with intensity ``rate(t)``.

Thinning is only correct while ``rate(t) <= max_rate_per_s`` *everywhere*;
above the envelope the keep-probability saturates at 1 and the process is
silently under-sampled.  The majorant is therefore validated before
sampling, on a deterministic grid that includes the workload's
``critical_times_s`` (burst edges and centers, supplied by the demand
layer), so even a burst far narrower than the grid step cannot slip through
between samples — a violated envelope always raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.gpu.slices import SLICE_TYPES, slice_by_name
from repro.models.families import ModelFamily
from repro.models.perf import PerfModel
from repro.utils.rng import as_generator

__all__ = [
    "PoissonWorkload",
    "NonstationaryPoissonWorkload",
    "default_rate",
    "DEFAULT_BASE_UTILIZATION",
    "ENVELOPE_CHECK_STEP_S",
]

#: Sizing target for the BASE deployment: busy but not saturated.
DEFAULT_BASE_UTILIZATION = 0.65


@dataclass(frozen=True)
class PoissonWorkload:
    """Memoryless arrival process with a fixed rate (requests per second)."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate_per_s}")

    def arrivals(
        self, duration_s: float, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample the arrival times within ``[0, duration_s)``, sorted.

        Vectorized: draws the Poisson count for the window, then places the
        arrivals uniformly (the standard conditional construction of a
        homogeneous Poisson process).
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        gen = as_generator(rng)
        n = int(gen.poisson(self.rate_per_s * duration_s))
        times = gen.uniform(0.0, duration_s, size=n)
        times.sort()
        return times

    def arrivals_fixed_count(
        self, n: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample exactly ``n`` arrivals via exponential inter-arrival gaps.

        Used when a measurement needs a fixed sample size (e.g. a p95
        estimate of a candidate configuration) rather than a fixed window.
        """
        if n < 0:
            raise ValueError(f"arrival count must be non-negative, got {n}")
        gen = as_generator(rng)
        gaps = gen.exponential(1.0 / self.rate_per_s, size=n)
        return np.cumsum(gaps)

    def expected_requests(self, duration_s: float) -> float:
        """Mean number of arrivals in a window of ``duration_s`` seconds."""
        return self.rate_per_s * duration_s


#: Grid resolution of the deterministic majorant/quadrature checks.
ENVELOPE_CHECK_STEP_S = 60.0

#: Offset placed on both sides of a critical time so that a jump
#: discontinuity (a burst switching on or off) is sampled in both states.
_CRITICAL_EPS_S = 1e-6


@dataclass(frozen=True)
class NonstationaryPoissonWorkload:
    """Time-varying arrival process sampled by thinning.

    Attributes
    ----------
    rate_fn:
        Instantaneous arrival rate (req/s) as a function of time in
        *seconds* since the window start.  Must stay within
        ``(0, max_rate_per_s]`` over any sampled window.
    max_rate_per_s:
        The thinning envelope.  A tight envelope wastes fewer candidate
        draws; a rate above the envelope is a correctness error and raises.
    critical_times_s:
        Times (window seconds) where ``rate_fn`` may change abruptly —
        burst edges and peaks.  The majorant check and the
        :meth:`expected_requests` quadrature always sample these points
        (each bracketed by ±1 µs to catch jump discontinuities from both
        sides), so a burst narrower than the check grid cannot hide
        between grid samples.
    """

    rate_fn: Callable[[float], float]
    max_rate_per_s: float
    critical_times_s: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.max_rate_per_s <= 0:
            raise ValueError(
                f"envelope rate must be positive, got {self.max_rate_per_s}"
            )

    def _critical_grid(self, duration_s: float) -> np.ndarray:
        """The critical times inside the window, jump-bracketed, sorted."""
        pts = [
            t
            for c in self.critical_times_s
            for t in (c - _CRITICAL_EPS_S, c, c + _CRITICAL_EPS_S)
            if 0.0 <= t <= duration_s
        ]
        return np.asarray(sorted(pts), dtype=np.float64)

    def _check_grid(self, duration_s: float) -> np.ndarray:
        """Regular grid at check resolution, merged with critical times."""
        n = max(2, int(np.ceil(duration_s / ENVELOPE_CHECK_STEP_S)) + 1)
        grid = np.linspace(0.0, duration_s, n)
        extra = self._critical_grid(duration_s)
        if extra.size:
            grid = np.unique(np.concatenate([grid, extra]))
        return grid

    def _validate_envelope(self, duration_s: float) -> None:
        """Deterministic majorant check on the burst-aware grid.

        Runs *before* any candidate is drawn, so a violated envelope
        raises regardless of where the random candidates happen to land —
        the regression the ``critical_times_s`` grid exists for.
        """
        if duration_s <= 0:
            return
        grid = self._check_grid(duration_s)
        rates = np.array([self.rate_fn(float(t)) for t in grid])
        if np.any(rates > self.max_rate_per_s * (1.0 + 1e-9)):
            raise ValueError(
                f"rate_fn exceeds the thinning envelope {self.max_rate_per_s:g} "
                f"(max observed {rates.max():g}) — thinning would under-sample"
            )
        if np.any(rates < 0):
            raise ValueError("rate_fn must be non-negative everywhere")

    def arrivals(
        self, duration_s: float, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample the arrival times within ``[0, duration_s)``, sorted.

        Thinning: homogeneous candidates at ``max_rate_per_s``, each kept
        with probability ``rate_fn(t) / max_rate_per_s``.
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        self._validate_envelope(duration_s)
        gen = as_generator(rng)
        candidates = PoissonWorkload(self.max_rate_per_s).arrivals(
            duration_s, gen
        )
        if candidates.size == 0:
            return candidates
        rates = np.array([self.rate_fn(float(t)) for t in candidates])
        if np.any(rates > self.max_rate_per_s * (1.0 + 1e-9)):
            # The grid check can still be beaten by a spike between both
            # the grid and the declared critical times; candidate times
            # are a last line of defense.
            raise ValueError(
                f"rate_fn exceeds the thinning envelope {self.max_rate_per_s:g} "
                f"(max observed {rates.max():g}) — thinning would under-sample"
            )
        if np.any(rates < 0):
            raise ValueError("rate_fn must be non-negative everywhere")
        keep = gen.uniform(size=candidates.size) < rates / self.max_rate_per_s
        return candidates[keep]

    def expected_requests(self, duration_s: float, step_s: float = 60.0) -> float:
        """Mean arrivals in the window: the integral of the rate function.

        Trapezoidal quadrature at ``step_s`` resolution, with the
        workload's critical times merged into the node set — a burst
        shorter than ``step_s`` between two nodes used to vanish from the
        integral entirely; its bracketed edges now pin the rectangle.
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        if step_s <= 0:
            raise ValueError(f"step must be positive, got {step_s}")
        if duration_s == 0:
            return 0.0
        t = np.linspace(0.0, duration_s, max(2, int(np.ceil(duration_s / step_s)) + 1))
        extra = self._critical_grid(duration_s)
        if extra.size:
            t = np.unique(np.concatenate([t, extra]))
        rates = np.array([self.rate_fn(float(s)) for s in t])
        return float(np.trapezoid(rates, t))


def default_rate(
    family: ModelFamily,
    perf: PerfModel,
    n_gpus: int,
    utilization: float = DEFAULT_BASE_UTILIZATION,
    throughput_scale_sum: float | None = None,
) -> float:
    """Paper-style workload sizing: a fraction of BASE's service capacity.

    BASE hosts the family's largest variant on every unpartitioned (7g) GPU,
    so its aggregate capacity is ``n_gpus / tau(largest, 7g)``; the returned
    rate loads that capacity to ``utilization``.

    ``throughput_scale_sum`` sizes a *heterogeneous* cluster: the pool's
    capacity in A100-equivalents
    (:attr:`repro.gpu.profiles.DevicePool.throughput_scale_sum`) replaces
    the bare GPU count, so a 4-GPU L4 pool at scale 0.4 is sized like 1.6
    reference GPUs.  ``None`` — the default — is the seed homogeneous
    sizing, bit for bit.
    """
    if n_gpus <= 0:
        raise ValueError(f"n_gpus must be positive, got {n_gpus}")
    if not 0.0 < utilization < 1.0:
        raise ValueError(f"utilization must be in (0, 1), got {utilization}")
    full = slice_by_name("7g")
    assert full in SLICE_TYPES
    per_gpu_rate = perf.service_rate(family.largest, full)
    if throughput_scale_sum is not None:
        if throughput_scale_sum <= 0:
            raise ValueError(
                f"throughput scale sum must be positive, got {throughput_scale_sum}"
            )
        return utilization * throughput_scale_sum * per_gpu_rate
    return utilization * n_gpus * per_gpu_rate
