"""Inference-serving substrate: workload, queueing, simulation, metrics.

Replaces the paper's Flask + FIFO producer/consumer serving stack with a
discrete-event simulation of the same pipeline, plus a fast analytical
estimator the optimizer uses in its inner loop:

* :mod:`repro.serving.workload` — Poisson query arrivals and paper-style sizing,
* :mod:`repro.serving.instance` — one model copy on one MIG slice,
* :mod:`repro.serving.queueing` — the producer/consumer FIFO queue,
* :mod:`repro.serving.des` — exact discrete-event simulation,
* :mod:`repro.serving.analytic` — M/G/c-style closed-form estimates,
* :mod:`repro.serving.metrics` — tail latency, shares, utilization,
* :mod:`repro.serving.sla` — the p95 SLA policy (Eq. 5).
"""

from repro.serving.requests import Request, RequestBatch
from repro.serving.workload import (
    PoissonWorkload,
    default_rate,
    DEFAULT_BASE_UTILIZATION,
)
from repro.serving.instance import (
    ServiceInstance,
    sample_jitter,
    DEFAULT_JITTER_CV,
)
from repro.serving.queueing import FifoQueue, QueueStats
from repro.serving.des import simulate_fifo
from repro.serving.analytic import QueueEstimate, estimate_fifo, erlang_c
from repro.serving.metrics import (
    LatencySummary,
    ServingMetrics,
    summarize,
    DEFAULT_WARMUP_FRACTION,
)
from repro.serving.sla import SlaPolicy

__all__ = [
    "Request",
    "RequestBatch",
    "PoissonWorkload",
    "default_rate",
    "DEFAULT_BASE_UTILIZATION",
    "ServiceInstance",
    "sample_jitter",
    "DEFAULT_JITTER_CV",
    "FifoQueue",
    "QueueStats",
    "simulate_fifo",
    "QueueEstimate",
    "estimate_fifo",
    "erlang_c",
    "LatencySummary",
    "ServingMetrics",
    "summarize",
    "DEFAULT_WARMUP_FRACTION",
    "SlaPolicy",
]
