"""Request records and batch views for the inference-serving simulator.

The hot path of the discrete-event simulator works on NumPy arrays (one entry
per request) rather than Python objects; :class:`RequestBatch` is the
structure-of-arrays container for those, and :class:`Request` is the
object view used at API boundaries and in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Request", "RequestBatch"]


@dataclass(frozen=True)
class Request:
    """One inference request's life cycle, all times in seconds.

    ``latency`` is end-to-end (queue wait + service), the quantity the
    paper's p95 SLA is defined over.
    """

    request_id: int
    arrival_s: float
    start_s: float
    finish_s: float
    instance_index: int

    @property
    def wait_s(self) -> float:
        """Time spent in the FIFO queue before an instance picked it up."""
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        """Time spent processing on the assigned instance."""
        return self.finish_s - self.start_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency (wait + service)."""
        return self.finish_s - self.arrival_s

    def __post_init__(self) -> None:
        if not self.arrival_s <= self.start_s <= self.finish_s:
            raise ValueError(
                f"request {self.request_id}: times must be ordered "
                f"(arrival={self.arrival_s}, start={self.start_s}, "
                f"finish={self.finish_s})"
            )


@dataclass(frozen=True)
class RequestBatch:
    """Structure-of-arrays record of a simulated batch of requests."""

    arrival_s: np.ndarray
    start_s: np.ndarray
    finish_s: np.ndarray
    instance_index: np.ndarray

    def __post_init__(self) -> None:
        n = self.arrival_s.shape[0]
        for name in ("start_s", "finish_s", "instance_index"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {arr.shape}")
        if n and not (
            np.all(self.arrival_s <= self.start_s)
            and np.all(self.start_s <= self.finish_s)
        ):
            raise ValueError("request times must satisfy arrival <= start <= finish")

    def __len__(self) -> int:
        return int(self.arrival_s.shape[0])

    @property
    def wait_s(self) -> np.ndarray:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> np.ndarray:
        return self.finish_s - self.start_s

    @property
    def latency_s(self) -> np.ndarray:
        return self.finish_s - self.arrival_s

    @property
    def latency_ms(self) -> np.ndarray:
        return self.latency_s * 1e3

    def request(self, k: int) -> Request:
        """Object view of the ``k``-th request (for tests and debugging)."""
        return Request(
            request_id=k,
            arrival_s=float(self.arrival_s[k]),
            start_s=float(self.start_s[k]),
            finish_s=float(self.finish_s[k]),
            instance_index=int(self.instance_index[k]),
        )

    def tail(self, skip_fraction: float) -> "RequestBatch":
        """Drop the first ``skip_fraction`` of requests (warm-up trimming)."""
        if not 0.0 <= skip_fraction < 1.0:
            raise ValueError(f"skip_fraction must be in [0, 1), got {skip_fraction}")
        k = int(len(self) * skip_fraction)
        return RequestBatch(
            arrival_s=self.arrival_s[k:],
            start_s=self.start_s[k:],
            finish_s=self.finish_s[k:],
            instance_index=self.instance_index[k:],
        )
