"""Closed-form steady-state estimator for the FIFO serving pipeline.

Clover's optimizer evaluates hundreds of candidate configurations per
48-hour run; simulating each one would dominate the runtime, so the search
uses this analytical estimator and the runner validates/reports with the
discrete-event simulator (:mod:`repro.serving.des`).

The model is an M/G/c approximation of the heterogeneous FIFO service:

* utilization ``rho = lambda / sum_j mu_j``; ``rho >= 1`` is overload
  (the queue grows without bound — the paper's "consumer cannot keep up
  with the producer" failure, an automatic SLA violation),
* the probability of queueing comes from the Erlang-C formula with ``c``
  homogenized servers, corrected for general service times with the
  Allen–Cunneen factor ``(ca^2 + cs^2) / 2``,
* conditional on queueing, the wait is approximated as exponential,
* the response-time CDF is the convolution of that wait with the discrete
  mixture of per-instance service times, and quantiles are found by
  bisection on the (monotone) CDF.

Accuracy against the DES is pinned by tests (see
``tests/serving/test_analytic.py``): a few percent on utilization and
request shares, ~10% on p95 in the load regimes the optimizer visits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.instance import DEFAULT_JITTER_CV

__all__ = ["QueueEstimate", "estimate_fifo", "erlang_c"]

#: Utilization above which the estimator declares overload: queue estimates
#: explode as rho -> 1 and the DES cannot reach steady state either.
OVERLOAD_RHO = 0.98


def erlang_c(c: int, offered_load: float) -> float:
    """Erlang-C probability that an arriving request must queue.

    ``offered_load`` is in erlangs (``lambda / mu_per_server``).  Uses the
    numerically stable Erlang-B recursion; exact for M/M/c.
    """
    if c <= 0:
        raise ValueError(f"server count must be positive, got {c}")
    if offered_load < 0:
        raise ValueError(f"offered load must be non-negative, got {offered_load}")
    if offered_load == 0:
        return 0.0
    rho = offered_load / c
    if rho >= 1.0:
        return 1.0
    # Erlang-B via the stable recursion B_k = a B_{k-1} / (k + a B_{k-1}).
    b = 1.0
    for k in range(1, c + 1):
        b = offered_load * b / (k + offered_load * b)
    return b / (1.0 - rho * (1.0 - b))


@dataclass(frozen=True)
class QueueEstimate:
    """Steady-state estimate of the serving pipeline for one configuration."""

    rate_per_s: float
    utilization: float
    overloaded: bool
    p_wait: float
    mean_wait_s: float
    mean_service_s: float
    shares: np.ndarray
    service_s: np.ndarray

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency (wait + service)."""
        if self.overloaded:
            return float("inf")
        return self.mean_wait_s + self.mean_service_s

    def latency_cdf(self, t_s: float) -> float:
        """P(end-to-end latency <= t_s) under the mixture model."""
        if self.overloaded:
            return 0.0
        if self.p_wait <= 0 or self.mean_wait_s <= 0:
            return float(np.dot(self.shares, (self.service_s <= t_s)))
        beta = self.p_wait / self.mean_wait_s  # conditional wait rate
        x = t_s - self.service_s
        mask = x >= 0
        cdf_terms = np.where(mask, 1.0 - self.p_wait * np.exp(-beta * np.maximum(x, 0.0)), 0.0)
        return float(np.dot(self.shares, cdf_terms))

    def quantile_s(self, q: float) -> float:
        """The ``q``-quantile (q in (0, 1)) of end-to-end latency, seconds."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        if self.overloaded:
            return float("inf")
        lo = 0.0
        hi = float(self.service_s.max()) + self.mean_wait_s
        # Expand until the CDF brackets q (the exponential tail is unbounded).
        while self.latency_cdf(hi) < q:
            hi *= 2.0
            if hi > 1e9:  # pragma: no cover - defensive
                return float("inf")
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.latency_cdf(mid) < q:
                lo = mid
            else:
                hi = mid
        return hi

    def p95_ms(self) -> float:
        """p95 end-to-end latency in milliseconds (the paper's SLA metric)."""
        return self.quantile_s(0.95) * 1e3


def estimate_fifo(
    mean_service_s: np.ndarray,
    rate_per_s: float,
    jitter_cv: float = DEFAULT_JITTER_CV,
) -> QueueEstimate:
    """Estimate the steady state of a heterogeneous FIFO service.

    Parameters
    ----------
    mean_service_s:
        Mean service time of each instance.
    rate_per_s:
        Poisson arrival rate.
    jitter_cv:
        Service-time jitter, folded into the squared coefficient of
        variation used by the Allen–Cunneen wait correction.
    """
    service = np.asarray(mean_service_s, dtype=np.float64)
    if service.ndim != 1 or service.size == 0:
        raise ValueError("mean_service_s must be a non-empty 1-D array")
    if np.any(service <= 0):
        raise ValueError("all mean service times must be positive")
    if rate_per_s <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_per_s}")

    m = service.size
    mu = 1.0 / service
    mu_total = float(mu.sum())
    rho = rate_per_s / mu_total

    if rho >= OVERLOAD_RHO:
        return QueueEstimate(
            rate_per_s=rate_per_s,
            utilization=rho,
            overloaded=True,
            p_wait=1.0,
            mean_wait_s=float("inf"),
            mean_service_s=float(service.mean()),
            shares=np.full(m, 1.0 / m),
            service_s=service,
        )

    # Request shares: earliest-free dispatch behaves like round-robin when
    # the system is mostly idle (equal shares) and like rate-proportional
    # work stealing when the queue is never empty; blend by utilization.
    shares = (1.0 - rho) / m + rho * (mu / mu_total)
    shares = shares / shares.sum()

    mean_service = float(np.dot(shares, service))
    second_moment = float(np.dot(shares, service**2)) * (1.0 + jitter_cv**2)
    cs2 = max(second_moment / mean_service**2 - 1.0, 0.0)

    # Homogenized Erlang-C with the Allen-Cunneen general-service correction
    # (ca^2 = 1 for Poisson arrivals).
    mu_bar = mu_total / m
    offered = rate_per_s / mu_bar
    p_wait = erlang_c(m, offered)
    mean_wait = p_wait / (mu_total - rate_per_s) * (1.0 + cs2) / 2.0

    return QueueEstimate(
        rate_per_s=rate_per_s,
        utilization=rho,
        overloaded=False,
        p_wait=p_wait,
        mean_wait_s=mean_wait,
        mean_service_s=mean_service,
        shares=shares,
        service_s=service,
    )
