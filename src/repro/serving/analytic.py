"""Closed-form steady-state estimator for the FIFO serving pipeline.

Clover's optimizer evaluates hundreds of candidate configurations per
48-hour run; simulating each one would dominate the runtime, so the search
uses this analytical estimator and the runner validates/reports with the
discrete-event simulator (:mod:`repro.serving.des`).

The model is an M/G/c approximation of the heterogeneous FIFO service:

* utilization ``rho = lambda / sum_j mu_j``; ``rho >= 1`` is overload
  (the queue grows without bound — the paper's "consumer cannot keep up
  with the producer" failure, an automatic SLA violation),
* the probability of queueing comes from the Erlang-C formula with ``c``
  homogenized servers, corrected for general service times with the
  Allen–Cunneen factor ``(ca^2 + cs^2) / 2``,
* conditional on queueing, the wait is approximated as exponential,
* the response-time CDF is the convolution of that wait with the discrete
  mixture of per-instance service times, and quantiles are found by
  bisection on the (monotone) CDF.

Accuracy against the DES is pinned by tests (see
``tests/serving/test_analytic.py``): a few percent on utilization and
request shares, ~10% on p95 in the load regimes the optimizer visits.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.serving.instance import DEFAULT_JITTER_CV

__all__ = [
    "QueueEstimate",
    "BatchQueueEstimate",
    "estimate_fifo",
    "estimate_fifo_batch",
    "erlang_c",
    "erlang_c_batch",
]

#: Utilization above which the estimator declares overload: queue estimates
#: explode as rho -> 1 and the DES cannot reach steady state either.
OVERLOAD_RHO = 0.98


@lru_cache(maxsize=65536)
def _erlang_c_cached(c: int, offered_load: float) -> float:
    """The O(c) Erlang-B recursion, memoized on exact ``(c, load)`` keys.

    SLA bisections probe the same deployed configuration at the same
    bracket rates epoch after epoch; the memo turns those repeats into
    dictionary lookups without touching the recursion's arithmetic, so
    cached and fresh answers are bit-for-bit identical.
    """
    rho = offered_load / c
    # Erlang-B via the stable recursion B_k = a B_{k-1} / (k + a B_{k-1}).
    b = 1.0
    for k in range(1, c + 1):
        b = offered_load * b / (k + offered_load * b)
    return b / (1.0 - rho * (1.0 - b))


def erlang_c(c: int, offered_load: float) -> float:
    """Erlang-C probability that an arriving request must queue.

    ``offered_load`` is in erlangs (``lambda / mu_per_server``).  Uses the
    numerically stable Erlang-B recursion; exact for M/M/c.
    """
    if c <= 0:
        raise ValueError(f"server count must be positive, got {c}")
    if offered_load < 0:
        raise ValueError(f"offered load must be non-negative, got {offered_load}")
    if offered_load == 0:
        return 0.0
    if offered_load / c >= 1.0:
        return 1.0
    return _erlang_c_cached(int(c), float(offered_load))


def erlang_c_batch(c, offered_load) -> np.ndarray:
    """Vectorized :func:`erlang_c` over arrays of ``(c, offered_load)``.

    Broadcasts ``c`` against ``offered_load`` and runs the Erlang-B
    recursion in lockstep, masking each element once its own server count
    is reached — the per-element arithmetic is exactly the scalar
    recursion's, so results are bit-for-bit identical to :func:`erlang_c`.
    """
    c_arr, a = np.broadcast_arrays(
        np.asarray(c, dtype=np.int64), np.asarray(offered_load, dtype=np.float64)
    )
    if np.any(c_arr <= 0):
        raise ValueError("server counts must be positive")
    if np.any(a < 0):
        raise ValueError("offered loads must be non-negative")
    if c_arr.size == 0:
        return np.zeros(c_arr.shape)
    rho = a / c_arr
    # Lockstep Erlang-B: element i stops updating after k == c_i, freezing
    # b at its own B_{c_i} — the same sequence of fused multiply/divides
    # the scalar loop performs.
    b = np.ones_like(a)
    for k in range(1, int(c_arr.max()) + 1):
        active = k <= c_arr
        b = np.where(active, a * b / (k + a * b), b)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = b / (1.0 - rho * (1.0 - b))
    out = np.where(rho >= 1.0, 1.0, out)
    return np.where(a == 0.0, 0.0, out)


@dataclass(frozen=True)
class QueueEstimate:
    """Steady-state estimate of the serving pipeline for one configuration."""

    rate_per_s: float
    utilization: float
    overloaded: bool
    p_wait: float
    mean_wait_s: float
    mean_service_s: float
    shares: np.ndarray
    service_s: np.ndarray

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency (wait + service)."""
        if self.overloaded:
            return float("inf")
        return self.mean_wait_s + self.mean_service_s

    def latency_cdf(self, t_s: float) -> float:
        """P(end-to-end latency <= t_s) under the mixture model."""
        if self.overloaded:
            return 0.0
        if self.p_wait <= 0 or self.mean_wait_s <= 0:
            return float(np.dot(self.shares, (self.service_s <= t_s)))
        beta = self.p_wait / self.mean_wait_s  # conditional wait rate
        x = t_s - self.service_s
        mask = x >= 0
        cdf_terms = np.where(mask, 1.0 - self.p_wait * np.exp(-beta * np.maximum(x, 0.0)), 0.0)
        return float(np.dot(self.shares, cdf_terms))

    def quantile_s(self, q: float) -> float:
        """The ``q``-quantile (q in (0, 1)) of end-to-end latency, seconds."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        if self.overloaded:
            return float("inf")
        lo = 0.0
        hi = float(self.service_s.max()) + self.mean_wait_s
        # Expand until the CDF brackets q (the exponential tail is unbounded).
        while self.latency_cdf(hi) < q:
            hi *= 2.0
            if hi > 1e9:  # pragma: no cover - defensive
                return float("inf")
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.latency_cdf(mid) < q:
                lo = mid
            else:
                hi = mid
        return hi

    def p95_ms(self) -> float:
        """p95 end-to-end latency in milliseconds (the paper's SLA metric)."""
        return self.quantile_s(0.95) * 1e3


def estimate_fifo(
    mean_service_s: np.ndarray,
    rate_per_s: float,
    jitter_cv: float = DEFAULT_JITTER_CV,
) -> QueueEstimate:
    """Estimate the steady state of a heterogeneous FIFO service.

    Parameters
    ----------
    mean_service_s:
        Mean service time of each instance.
    rate_per_s:
        Poisson arrival rate.
    jitter_cv:
        Service-time jitter, folded into the squared coefficient of
        variation used by the Allen–Cunneen wait correction.
    """
    service = np.asarray(mean_service_s, dtype=np.float64)
    if service.ndim != 1 or service.size == 0:
        raise ValueError("mean_service_s must be a non-empty 1-D array")
    if np.any(service <= 0):
        raise ValueError("all mean service times must be positive")
    if rate_per_s <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_per_s}")

    m = service.size
    mu = 1.0 / service
    mu_total = float(mu.sum())
    rho = rate_per_s / mu_total

    if rho >= OVERLOAD_RHO:
        return QueueEstimate(
            rate_per_s=rate_per_s,
            utilization=rho,
            overloaded=True,
            p_wait=1.0,
            mean_wait_s=float("inf"),
            mean_service_s=float(service.mean()),
            shares=np.full(m, 1.0 / m),
            service_s=service,
        )

    # Request shares: earliest-free dispatch behaves like round-robin when
    # the system is mostly idle (equal shares) and like rate-proportional
    # work stealing when the queue is never empty; blend by utilization.
    shares = (1.0 - rho) / m + rho * (mu / mu_total)
    shares = shares / shares.sum()

    mean_service = float(np.dot(shares, service))
    second_moment = float(np.dot(shares, service**2)) * (1.0 + jitter_cv**2)
    cs2 = max(second_moment / mean_service**2 - 1.0, 0.0)

    # Homogenized Erlang-C with the Allen-Cunneen general-service correction
    # (ca^2 = 1 for Poisson arrivals).
    mu_bar = mu_total / m
    offered = rate_per_s / mu_bar
    p_wait = erlang_c(m, offered)
    mean_wait = p_wait / (mu_total - rate_per_s) * (1.0 + cs2) / 2.0

    return QueueEstimate(
        rate_per_s=rate_per_s,
        utilization=rho,
        overloaded=False,
        p_wait=p_wait,
        mean_wait_s=mean_wait,
        mean_service_s=mean_service,
        shares=shares,
        service_s=service,
    )


@dataclass(frozen=True)
class BatchQueueEstimate:
    """Row-wise steady-state estimates for a batch of configurations.

    Row ``i`` is exactly what ``estimate_fifo(service_s[i], rates_per_s[i])``
    would produce (the same formulas evaluated elementwise; agreement is
    within ~1e-12 relative, bounded only by summation-order rounding), but
    all rows share one pass through the Erlang recursion and one lockstep
    quantile bisection — the evaluator's batch hot path.
    """

    rates_per_s: np.ndarray
    utilization: np.ndarray
    overloaded: np.ndarray
    p_wait: np.ndarray
    mean_wait_s: np.ndarray
    mean_service_s: np.ndarray
    shares: np.ndarray
    service_s: np.ndarray

    def __len__(self) -> int:
        return int(self.rates_per_s.size)

    def _cdf_fn(self):
        """A lean row-wise CDF closure with the per-row constants hoisted.

        The quantile bisection evaluates the CDF ~82 times; computing
        ``beta`` and the degenerate/overload masks once keeps each pass to
        the unavoidable ``exp`` over the ``(n, m)`` block.  Padded cells
        carry zero shares, so they drop out of every mixture sum.
        """
        shares, service = self.shares, self.service_s
        p_wait = self.p_wait[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            beta = np.where(
                self.mean_wait_s > 0, self.p_wait / self.mean_wait_s, 0.0
            )[:, None]
        degenerate = ((self.p_wait <= 0) | (self.mean_wait_s <= 0))[:, None]
        overloaded = self.overloaded

        def cdf(t_s: np.ndarray) -> np.ndarray:
            t = t_s[:, None]
            x = t - service
            nonneg = x >= 0
            tail = 1.0 - p_wait * np.exp(-beta * np.where(nonneg, x, 0.0))
            terms = np.where(
                degenerate, nonneg, np.where(nonneg, tail, 0.0)
            )
            return np.where(overloaded, 0.0, np.sum(shares * terms, axis=1))

        return cdf

    def _cdf_rows(self, t_s: np.ndarray) -> np.ndarray:
        """Row-wise ``P(latency <= t_s[i])``; overloaded rows return 0."""
        return self._cdf_fn()(np.asarray(t_s, dtype=np.float64))

    def quantile_s(self, q: float) -> np.ndarray:
        """Row-wise ``q``-quantile of end-to-end latency, seconds."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        n = len(self)
        out = np.full(n, np.inf)
        ok = ~self.overloaded
        if not np.any(ok):
            return out
        cdf = self._cdf_fn()
        lo = np.zeros(n)
        hi = np.where(
            ok, self.service_s.max(axis=1) + self.mean_wait_s, 1.0
        )
        # Expand until every row's CDF brackets q (the exponential tail is
        # unbounded); rows past the scalar path's 1e9 guard go to inf.
        for _ in range(64):
            need = ok & (cdf(hi) < q)
            if not np.any(need):
                break
            hi = np.where(need, hi * 2.0, hi)
        blown = ok & (hi > 1e9) & (cdf(hi) < q)  # pragma: no cover
        ok = ok & ~blown
        # Same 80-step cap as the scalar bisection, but stop once every
        # row's bracket is ~1e-12 relative — iterations past that point
        # only churn sub-ulp noise (checked every 8th pass to keep the
        # reduction off the hot loop).
        for it in range(80):
            mid = 0.5 * (lo + hi)
            less = cdf(mid) < q
            lo = np.where(ok & less, mid, lo)
            hi = np.where(ok & ~less, mid, hi)
            if it % 8 == 7 and bool(np.all(~ok | (hi - lo <= 1e-12 * hi))):
                break
        out[ok] = hi[ok]
        return out

    def p95_ms(self) -> np.ndarray:
        """Row-wise p95 end-to-end latency in milliseconds."""
        return self.quantile_s(0.95) * 1e3


def estimate_fifo_batch(
    mean_service_s: np.ndarray,
    rates_per_s,
    jitter_cv: float = DEFAULT_JITTER_CV,
    valid: np.ndarray | None = None,
) -> BatchQueueEstimate:
    """Vectorized :func:`estimate_fifo` over a batch of configurations.

    Parameters
    ----------
    mean_service_s:
        ``(m,)`` — one instance set shared by every row (a rate grid over
        one configuration) — or ``(n, m)`` — one row per configuration
        (a candidate set).
    rates_per_s:
        Scalar or ``(n,)`` Poisson arrival rates, one per row.
    jitter_cv:
        As in :func:`estimate_fifo`.
    valid:
        Optional ``(n, m)`` boolean mask for ragged candidate sets: rows
        with fewer instances are zero-padded on the right and masked out
        here, so configurations of different sizes share one lockstep
        bisection.  Padded cells must hold ``0.0`` service time and end
        up with zero share, dropping out of every mixture sum.

    Every row reproduces the scalar estimator's formulas; the only
    divergence is float summation order (``np.dot`` vs row-wise sums),
    which the fully-converged 80-step quantile bisection keeps below
    ~1e-12 relative on p95.
    """
    service = np.asarray(mean_service_s, dtype=np.float64)
    if service.ndim == 1:
        service = service[None, :]
    if service.ndim != 2 or service.shape[1] == 0:
        raise ValueError("mean_service_s must be (m,) or (n, m), m >= 1")
    rates = np.asarray(rates_per_s, dtype=np.float64)
    if rates.ndim == 0:
        rates = np.full(service.shape[0], float(rates))
    if service.shape[0] == 1 and rates.size > 1:
        service = np.broadcast_to(service, (rates.size, service.shape[1]))
    if rates.shape != (service.shape[0],):
        raise ValueError(
            f"{rates.size} rates for {service.shape[0]} service rows"
        )
    if valid is not None:
        valid = np.asarray(valid, dtype=bool)
        if valid.shape != service.shape:
            raise ValueError(
                f"valid mask shape {valid.shape} != service {service.shape}"
            )
        if not np.all(valid.any(axis=1)):
            raise ValueError("every row needs at least one valid instance")
        if np.any(service[valid] <= 0):
            raise ValueError("all mean service times must be positive")
    elif np.any(service <= 0):
        raise ValueError("all mean service times must be positive")
    if np.any(rates <= 0):
        raise ValueError("all arrival rates must be positive")

    n, m = service.shape
    if valid is None:
        mu = 1.0 / service
        counts_row: np.ndarray | int = m
        counts_col: np.ndarray | int = m
    else:
        mu = np.where(valid, 1.0 / np.where(valid, service, 1.0), 0.0)
        counts_row = valid.sum(axis=1)
        counts_col = counts_row[:, None]
    mu_total = mu.sum(axis=1)
    rho = rates / mu_total
    overloaded = rho >= OVERLOAD_RHO

    shares = (1.0 - rho)[:, None] / counts_col + rho[:, None] * (
        mu / mu_total[:, None]
    )
    if valid is not None:
        shares = np.where(valid, shares, 0.0)
    shares = shares / shares.sum(axis=1, keepdims=True)
    fair = (
        1.0 / counts_col
        if valid is None
        else np.where(valid, 1.0 / counts_col, 0.0)
    )
    shares = np.where(overloaded[:, None], fair, shares)

    mean_service = np.where(
        overloaded,
        service.sum(axis=1) / counts_row,
        np.sum(shares * service, axis=1),
    )
    second_moment = np.sum(shares * service**2, axis=1) * (1.0 + jitter_cv**2)
    cs2 = np.maximum(second_moment / mean_service**2 - 1.0, 0.0)

    mu_bar = mu_total / counts_row
    offered = rates / mu_bar
    with np.errstate(divide="ignore", invalid="ignore"):
        p_wait = erlang_c_batch(counts_row, offered)
        mean_wait = p_wait / (mu_total - rates) * (1.0 + cs2) / 2.0
    p_wait = np.where(overloaded, 1.0, p_wait)
    mean_wait = np.where(overloaded, np.inf, mean_wait)

    return BatchQueueEstimate(
        rates_per_s=rates,
        utilization=rho,
        overloaded=overloaded,
        p_wait=p_wait,
        mean_wait_s=mean_wait,
        mean_service_s=mean_service,
        shares=shares,
        service_s=np.ascontiguousarray(service),
    )
