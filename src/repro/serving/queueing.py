"""The producer/consumer FIFO queue of the Clover load balancer.

The paper's load-balancer module has a producer that appends user requests to
a FIFO queue and a consumer that hands the head of the queue to whichever
service instance signals it is free.  :class:`FifoQueue` is that structure
with the occupancy accounting the runtime needs (depth watermarks feed the
"consumer cannot keep up with the producer" overload diagnosis of Sec. 4.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["FifoQueue", "QueueStats"]


@dataclass(frozen=True)
class QueueStats:
    """Occupancy accounting of a FIFO queue over its lifetime."""

    enqueued: int
    dequeued: int
    max_depth: int

    @property
    def depth(self) -> int:
        """Requests currently waiting."""
        return self.enqueued - self.dequeued


@dataclass
class FifoQueue:
    """First-in-first-out request queue with depth accounting.

    Items are opaque to the queue (the simulator stores request indices).
    """

    _items: deque = field(default_factory=deque, repr=False)
    _enqueued: int = field(default=0, init=False)
    _dequeued: int = field(default=0, init=False)
    _max_depth: int = field(default=0, init=False)

    def put(self, item) -> None:
        """Producer side: append a request to the tail."""
        self._items.append(item)
        self._enqueued += 1
        if len(self._items) > self._max_depth:
            self._max_depth = len(self._items)

    def get(self):
        """Consumer side: pop the head; raises ``IndexError`` when empty."""
        item = self._items.popleft()
        self._dequeued += 1
        return item

    def peek(self):
        """Head of the queue without removing it."""
        return self._items[0]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def stats(self) -> QueueStats:
        return QueueStats(
            enqueued=self._enqueued,
            dequeued=self._dequeued,
            max_depth=self._max_depth,
        )
