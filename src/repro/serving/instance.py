"""A service instance: one model copy hosted on one MIG slice.

This is the unit of the paper's serving layer — "every partition hosts one
model copy".  An instance knows its mean service time (from the analytical
performance model) and can sample jittered per-request service times for the
discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.slices import SliceType
from repro.models.perf import PerfModel
from repro.models.variants import ModelVariant
from repro.utils.rng import as_generator

__all__ = ["ServiceInstance", "sample_jitter", "DEFAULT_JITTER_CV"]

#: Coefficient of variation of per-request service time.  GPU inference is
#: close to deterministic (same kernels every request); the residual spread
#: models input-size variation and host-side noise.
DEFAULT_JITTER_CV = 0.08


def sample_jitter(
    n: int,
    cv: float = DEFAULT_JITTER_CV,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Multiplicative service-time jitter with mean exactly 1.

    Lognormal with the requested coefficient of variation; ``cv = 0`` returns
    ones (fully deterministic service).
    """
    if n < 0:
        raise ValueError(f"sample count must be non-negative, got {n}")
    if cv < 0:
        raise ValueError(f"jitter cv must be non-negative, got {cv}")
    if cv == 0.0:
        return np.ones(n)
    gen = as_generator(rng)
    sigma2 = np.log1p(cv * cv)
    mu = -0.5 * sigma2
    return gen.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=n)


@dataclass(frozen=True)
class ServiceInstance:
    """One hosted model copy: ``(gpu, slice, variant)`` plus its performance."""

    instance_id: int
    gpu_id: int
    slice_type: SliceType
    variant: ModelVariant
    mean_service_s: float
    busy_watts: float

    @classmethod
    def create(
        cls,
        instance_id: int,
        gpu_id: int,
        slice_type: SliceType,
        variant: ModelVariant,
        perf: PerfModel,
    ) -> "ServiceInstance":
        """Build an instance, resolving its performance via ``perf``."""
        return cls(
            instance_id=instance_id,
            gpu_id=gpu_id,
            slice_type=slice_type,
            variant=variant,
            mean_service_s=perf.latency_s(variant, slice_type),
            busy_watts=perf.busy_watts(variant, slice_type),
        )

    def __post_init__(self) -> None:
        if self.mean_service_s <= 0:
            raise ValueError(
                f"service time must be positive, got {self.mean_service_s}"
            )
        if self.busy_watts < 0:
            raise ValueError(f"busy power must be non-negative, got {self.busy_watts}")

    @property
    def service_rate(self) -> float:
        """Requests per second at 100% utilization."""
        return 1.0 / self.mean_service_s

    @property
    def accuracy(self) -> float:
        """Accuracy of requests served by this instance (variant's metric)."""
        return self.variant.accuracy

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"inst{self.instance_id}[gpu{self.gpu_id}/{self.slice_type.name}:"
            f"{self.variant.name}]"
        )
