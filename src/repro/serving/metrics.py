"""Serving metrics: latency summaries, request shares, and utilization.

Turns raw :class:`~repro.serving.requests.RequestBatch` records from the DES
into the quantities the paper reports: tail latency percentiles, throughput,
and the per-instance request shares that weight the overall accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.requests import RequestBatch
from repro.utils.stats import exact_percentile

__all__ = ["LatencySummary", "ServingMetrics", "summarize", "DEFAULT_WARMUP_FRACTION"]

#: Fraction of the earliest requests dropped before computing steady-state
#: statistics (the empty-queue start would bias tail latency down).
DEFAULT_WARMUP_FRACTION = 0.1


@dataclass(frozen=True)
class LatencySummary:
    """End-to-end latency percentiles of a measured batch, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_batch(cls, batch: RequestBatch) -> "LatencySummary":
        lat = batch.latency_ms
        if lat.size == 0:
            raise ValueError("cannot summarize an empty request batch")
        return cls(
            count=int(lat.size),
            mean_ms=float(lat.mean()),
            p50_ms=exact_percentile(lat, 50.0),
            p95_ms=exact_percentile(lat, 95.0),
            p99_ms=exact_percentile(lat, 99.0),
            max_ms=float(lat.max()),
        )


@dataclass(frozen=True)
class ServingMetrics:
    """Everything the runner reads off one measured window of serving."""

    latency: LatencySummary
    throughput_rps: float
    shares: np.ndarray
    utilization: np.ndarray
    makespan_s: float

    @property
    def mean_utilization(self) -> float:
        return float(self.utilization.mean())


def summarize(
    batch: RequestBatch,
    n_instances: int,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> ServingMetrics:
    """Compute steady-state metrics from a simulated batch.

    Parameters
    ----------
    batch:
        The DES output.
    n_instances:
        Total instance count (instances that served zero requests still get
        a share/utilization entry of 0, which matters for accuracy weights).
    warmup_fraction:
        Leading fraction of requests trimmed as transient.
    """
    if n_instances <= 0:
        raise ValueError(f"n_instances must be positive, got {n_instances}")
    if len(batch) == 0:
        raise ValueError("cannot summarize an empty request batch")
    steady = batch.tail(warmup_fraction)
    if len(steady) == 0:
        steady = batch

    makespan = float(steady.finish_s.max() - steady.arrival_s.min())
    makespan = max(makespan, 1e-12)

    counts = np.bincount(steady.instance_index, minlength=n_instances).astype(
        np.float64
    )
    busy = np.bincount(
        steady.instance_index, weights=steady.service_s, minlength=n_instances
    )

    return ServingMetrics(
        latency=LatencySummary.from_batch(steady),
        throughput_rps=len(steady) / makespan,
        shares=counts / counts.sum(),
        utilization=np.clip(busy / makespan, 0.0, 1.0),
        makespan_s=makespan,
    )
