"""repro.fleet — multi-region carbon-aware serving on top of the core loop.

The seed reproduction runs one cluster against one grid trace.  This
package makes *regions* first-class: a :class:`~repro.fleet.regions.Region`
pairs a grid profile/trace with datacenter PUE, user-facing network latency
and a GPU count; a :class:`~repro.fleet.regional.RegionalService` runs the
unmodified seed control loop for one region; a
:class:`~repro.fleet.coordinator.FleetCoordinator` splits one global
Poisson workload across N regions each epoch through a pluggable
:class:`~repro.fleet.routing.Router` (static, latency-aware, or
carbon-greedy with capacity and SLA caps) and aggregates the per-region
results into a :class:`~repro.fleet.coordinator.FleetResult`.

Idle power follows traffic when elastic capacity is enabled: a per-region
:class:`~repro.fleet.capacity.CapacityManager` sleeps whole GPUs as the
routed rate falls (hysteresis-guarded) and wakes them — reactively, paying
a wake-latency window, or proactively from the forecast-aware router's
lookahead hints — under one :class:`~repro.fleet.capacity.GatingPolicy`.

Regions may run different GPU generations
(:attr:`~repro.fleet.regions.Region.devices`, built on
:mod:`repro.gpu.profiles`): the carbon-greedy and forecast-aware routers
then rank regions on *effective gCO2/request* (grid intensity x the
deployed configuration's marginal joules/request on the region's own
silicon), and gated pools always sleep their least-efficient awake device
first.  An all-A100 fleet keeps the pre-heterogeneity path bit for bit.

Quickstart::

    from repro.fleet import FleetCoordinator, default_fleet_regions

    fleet = FleetCoordinator.create(
        default_fleet_regions(n_gpus=4), router="carbon-greedy",
        fidelity="smoke", seed=0, gating="reactive",
    )
    report = fleet.run(duration_h=24.0)
    print(report.total_carbon_g, report.mean_awake_fraction)
"""

from repro.fleet.capacity import (
    GATING_MODES,
    CapacityDecision,
    CapacityManager,
    GatingPolicy,
    make_gating_policy,
)
from repro.fleet.coordinator import (
    DEFAULT_DEMAND_SCALE,
    DEFAULT_FLOOR_SHARE,
    FleetCoordinator,
    FleetResult,
    share_evaluator_caches,
)
from repro.fleet.regional import DEFAULT_MAX_UTILIZATION, RegionalService
from repro.fleet.regions import (
    REGION_NAMES,
    Region,
    default_fleet_regions,
    make_region,
    region_by_name,
)
from repro.fleet.routing import (
    ROUTER_NAMES,
    CarbonGreedyRouter,
    ForecastAwareRouter,
    LatencyAwareRouter,
    Router,
    RoutingContext,
    StaticRouter,
    make_router,
)

__all__ = [
    "Region",
    "REGION_NAMES",
    "region_by_name",
    "default_fleet_regions",
    "make_region",
    "RegionalService",
    "DEFAULT_MAX_UTILIZATION",
    "Router",
    "RoutingContext",
    "StaticRouter",
    "LatencyAwareRouter",
    "CarbonGreedyRouter",
    "ForecastAwareRouter",
    "ROUTER_NAMES",
    "make_router",
    "FleetCoordinator",
    "FleetResult",
    "share_evaluator_caches",
    "DEFAULT_FLOOR_SHARE",
    "DEFAULT_DEMAND_SCALE",
    "GatingPolicy",
    "CapacityManager",
    "CapacityDecision",
    "GATING_MODES",
    "make_gating_policy",
]
