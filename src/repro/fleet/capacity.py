"""Elastic GPU capacity: per-region power-gating with hysteresis.

The fleet experiments of PR 2 exposed the structural ceiling of an
always-on fleet: idle power is paid per GPU whether or not traffic is
routed at it, so draining a dirty region saves only the dynamic margin.
This module makes idle power *follow traffic*: a per-region
:class:`CapacityManager` sleeps whole GPUs when the routed rate falls and
wakes them when demand (or a forecast of it) calls for headroom.

The epoch pipeline the coordinator runs is **gate → route → wake**:

1. **gate** (:meth:`CapacityManager.begin_epoch`) — scheduled transitions
   land: pre-wakes filed last epoch come online (ready *before* the demand
   they anticipate), hysteresis sleeps take effect.  The region's routing
   envelope (SLA caps, capacity) is computed against this awake count.
2. **route** — the router splits the global rate.  Routing sees *physical*
   capacity, not awake capacity: it may assign a region more than its
   awake GPUs can carry, and the region then pays to wake.
3. **wake** (:meth:`CapacityManager.settle`) — the routed rate is compared
   against the awake capacity.  A shortfall wakes GPUs *reactively*: they
   come online only after the policy's wake-up latency, so part of the
   epoch is served at the pre-wake capacity — the real price of scaling
   after the demand already arrived.  A forecast-aware router can instead
   file **pre-wakes** from its lookahead window (via
   ``Router.capacity_hint``), paying one epoch of extra static draw to
   have the capacity standing when the demand lands.

Sleeping is guarded by hysteresis so capacity does not flap across the
wake-latency boundary: a GPU is only gated after the routed rate has sat
below the *margined* sleep threshold for ``sleep_after_epochs``
consecutive epochs, and never in an epoch that also woke GPUs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "GatingPolicy",
    "CapacityDecision",
    "CapacityManager",
    "GATING_MODES",
    "make_gating_policy",
]

#: Named gating modes accepted by the coordinator/CLI.
GATING_MODES = ("reactive", "forecast")


@dataclass(frozen=True)
class GatingPolicy:
    """Knobs of the per-region capacity state machine.

    Attributes
    ----------
    target_utilization:
        Wake so the routed rate stays at or below this fraction of the
        awake capacity (the region's max-utilization rate scaled to awake
        GPUs).  Headroom above the nominal 65% sizing, below saturation.
    sleep_margin:
        Hysteresis deadband: sizing *down* pretends the rate is this
        factor larger, so capacity only sleeps once demand has genuinely
        receded, not at the first sub-threshold epoch.  Must be > 1.
    sleep_after_epochs:
        Consecutive epochs the margined rate must fit the smaller awake
        set before any GPU sleeps.
    wake_latency_s:
        How long a reactively-woken GPU takes to come online (rail
        un-gating plus re-paging model weights into every slice).  Charged
        as a serving window at the pre-wake capacity.
    wake_energy_j:
        Transition energy per woken GPU, charged in the epoch the wake
        completes.  ``None`` (the default) charges each woken device its
        *own* profile's :attr:`~repro.gpu.profiles.DeviceProfile.wake_energy_j`
        (an H100 re-pages more weights than an L4); a scalar overrides
        every device with one fleet-wide figure.  Either way the energy
        prices the 60 s transition at or below the board's awake static
        floor (rails ramp, HBM scrub, weight paging is PCIe-bound, the
        SMs stay idle) — so a wake never draws more than the always-on
        draw it was gated from, and a gated epoch's energy can never
        exceed its always-on twin's (property-tested).
    min_awake:
        Floor on the awake count — a region never gates its last GPUs
        below this (resident floor traffic must stay servable).
    prewake:
        Honor the router's capacity hints: file wakes one epoch ahead of
        forecast demand so they land without a wake window.
    """

    target_utilization: float = 0.75
    sleep_margin: float = 1.25
    sleep_after_epochs: int = 2
    wake_latency_s: float = 60.0
    wake_energy_j: float | None = None
    min_awake: int = 1
    prewake: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError(
                f"target utilization must be in (0, 1], got {self.target_utilization}"
            )
        if self.sleep_margin <= 1.0:
            raise ValueError(
                f"sleep margin must exceed 1 (it is a deadband), "
                f"got {self.sleep_margin}"
            )
        if self.sleep_after_epochs < 1:
            raise ValueError(
                f"sleep hysteresis must be >= 1 epoch, got {self.sleep_after_epochs}"
            )
        if self.wake_latency_s < 0 or (
            self.wake_energy_j is not None and self.wake_energy_j < 0
        ):
            raise ValueError("wake costs must be non-negative")
        if self.min_awake < 1:
            raise ValueError(f"min awake must be >= 1, got {self.min_awake}")


def make_gating_policy(mode: str, **kwargs) -> GatingPolicy:
    """Policy preset by mode name (one of :data:`GATING_MODES`).

    ``"reactive"`` wakes only on observed shortfall, so it keeps the
    conservative sleep hysteresis — a wrong sleep is paid back through a
    wake-latency window.  ``"forecast"`` honors the router's pre-wake
    hints, which changes the economics of sleeping: a predicted rise is
    met by a pre-wake that lands without a serving gap, so the preset
    sleeps with a tighter deadband and a shorter low-streak.  Keyword
    overrides win over the preset.

    >>> make_gating_policy("reactive").prewake
    False
    >>> make_gating_policy("forecast").sleep_after_epochs
    1
    >>> make_gating_policy("reactive").wake_energy_j is None  # per-device
    True
    >>> make_gating_policy("reactive", wake_energy_j=1000.0).wake_energy_j
    1000.0
    """
    presets: dict[str, dict] = {
        "reactive": dict(prewake=False),
        "forecast": dict(prewake=True, sleep_margin=1.1, sleep_after_epochs=1),
    }
    try:
        preset = presets[mode.lower()]
    except KeyError:
        raise ValueError(
            f"unknown gating mode {mode!r}; valid: {', '.join(GATING_MODES)}"
        ) from None
    return GatingPolicy(**{**preset, **kwargs})


@dataclass(frozen=True)
class CapacityDecision:
    """One epoch's settled capacity state for one region.

    ``serving_at_start`` < ``awake`` means GPUs were woken reactively this
    epoch and the region served the first ``wake_delay_s`` seconds at the
    smaller capacity.  ``woken`` counts every wake transition that
    completed this epoch (reactive plus matured pre-wakes) for energy
    charging; ``pending_wakes`` are pre-wakes that land next epoch.
    """

    awake: int
    serving_at_start: int
    woken: int
    slept: int
    wake_delay_s: float
    pending_wakes: int


class CapacityManager:
    """The awake/asleep state machine of one region's GPU pool.

    Parameters
    ----------
    n_gpus:
        Physical pool size.
    capacity_rate_per_s:
        The region's max-utilization rate with every GPU awake; awake
        capacity scales linearly (``capacity * awake / n_gpus``) unless
        per-device rates are given.
    policy:
        The gating knobs.
    per_gpu_rates:
        Heterogeneous pools: each device's max-utilization rate in the
        pool's canonical most-efficient-first order.  The awake set is
        always a canonical *prefix*, so sizing down gates the
        least-efficient awake device first — sleeping releases the worst
        silicon and keeps the best (``None``: homogeneous arithmetic).

    >>> mgr = CapacityManager(
    ...     n_gpus=2, capacity_rate_per_s=30.0, policy=GatingPolicy(),
    ...     # Pool-canonical order is most-carbon-*efficient* first, not
    ...     # fastest first: here an L4 (10 req/s) ahead of an A100 (20).
    ...     per_gpu_rates=(10.0, 20.0),
    ... )
    >>> mgr.gpus_for(rate_per_s=7.0, utilization=0.75)  # 7 <= 0.75 * 10
    1
    >>> mgr.gpus_for(rate_per_s=14.0, utilization=0.75)  # A100 wakes too
    2
    """

    def __init__(
        self,
        n_gpus: int,
        capacity_rate_per_s: float,
        policy: GatingPolicy,
        per_gpu_rates: tuple[float, ...] | None = None,
    ) -> None:
        if n_gpus < 1:
            raise ValueError(f"a pool needs at least one GPU, got {n_gpus}")
        if capacity_rate_per_s <= 0:
            raise ValueError(
                f"capacity rate must be positive, got {capacity_rate_per_s}"
            )
        if policy.min_awake > n_gpus:
            raise ValueError(
                f"min awake {policy.min_awake} exceeds the pool of {n_gpus}"
            )
        if per_gpu_rates is not None:
            if len(per_gpu_rates) != n_gpus:
                raise ValueError(
                    f"{len(per_gpu_rates)} per-GPU rates for {n_gpus} GPUs"
                )
            if any(r <= 0 for r in per_gpu_rates):
                raise ValueError(
                    f"per-GPU rates must be positive, got {per_gpu_rates}"
                )
        self.n_gpus = n_gpus
        self.policy = policy
        self._per_gpu_rate = capacity_rate_per_s / n_gpus
        # Awake-prefix cumulative capacities: _prefix_rates[k] is the rate
        # the first k canonical devices sustain at full utilization.
        self._prefix_rates: tuple[float, ...] | None = None
        if per_gpu_rates is not None:
            acc, total = [0.0], 0.0
            for r in per_gpu_rates:
                total += float(r)
                acc.append(total)
            self._prefix_rates = tuple(acc)
        self.reset()

    def reset(self) -> None:
        """Restore the boot state: fully provisioned, no scheduled moves.

        The coordinator calls this at the start of every run (alongside
        ``Router.reset``) so a reused coordinator does not inherit a
        previous run's awake counts, pending transitions or hysteresis
        streaks.
        """
        self.awake = self.n_gpus  # fleets boot fully provisioned
        self._pending_wakes = 0
        self._pending_sleeps = 0
        self._matured_wakes = 0
        self._low_streak = 0
        self.total_wakes = 0
        self.total_gpu_sleep_epochs = 0

    # ------------------------------------------------------------------ #
    # sizing arithmetic
    # ------------------------------------------------------------------ #

    def gpus_for(self, rate_per_s: float, utilization: float) -> int:
        """Smallest awake count keeping ``rate`` within ``utilization``.

        With per-device rates the count is the shortest canonical prefix
        whose capacity absorbs the rate — so the devices woken for a rise
        (and the ones released by a fall) are always the least-efficient
        ones in the pool.
        """
        if rate_per_s <= 0.0:
            return self.policy.min_awake
        if self._prefix_rates is not None:
            for k in range(self.policy.min_awake, self.n_gpus + 1):
                if utilization * self._prefix_rates[k] >= rate_per_s:
                    return k
            return self.n_gpus
        needed = math.ceil(rate_per_s / (utilization * self._per_gpu_rate))
        return max(self.policy.min_awake, min(self.n_gpus, needed))

    def awake_rate_per_s(self) -> float:
        """Rate the current awake set carries at full utilization."""
        if self._prefix_rates is not None:
            return self._prefix_rates[self.awake]
        return self.awake * self._per_gpu_rate

    # ------------------------------------------------------------------ #
    # the gate → (route) → wake epoch protocol
    # ------------------------------------------------------------------ #

    def begin_epoch(self) -> int:
        """Gate phase: land the transitions scheduled last epoch.

        Pre-wakes filed last epoch come online now — *before* routing —
        which is exactly what makes them free of the wake window.
        Hysteresis sleeps land here too: the GPUs finished their previous
        epoch, drained, and gate down at the boundary.  Returns the awake
        count the routing envelope must be computed against.
        """
        self._matured_wakes = self._pending_wakes
        self.awake = min(self.n_gpus, self.awake + self._pending_wakes)
        self._pending_wakes = 0
        if self._pending_sleeps:
            self.awake = max(self.policy.min_awake, self.awake - self._pending_sleeps)
            self._pending_sleeps = 0
        return self.awake

    def settle(
        self, routed_rate_per_s: float, hint_rate_per_s: float | None = None
    ) -> CapacityDecision:
        """Wake phase: reconcile the routed rate with the awake capacity.

        ``hint_rate_per_s`` is the router's forecast of this region's
        near-future routed rate (``None`` without pre-wake hints); it
        files pre-wakes for next epoch and holds capacity awake against a
        predicted rise, but never wakes reactively by itself.
        """
        policy = self.policy
        start = self.awake
        needed = self.gpus_for(routed_rate_per_s, policy.target_utilization)
        reactive = max(0, needed - start)
        self.awake = start + reactive
        self.total_wakes += reactive + self._matured_wakes

        # Pre-wake filing: capacity standing by the time the forecast
        # demand lands, at the price of its static draw in the meantime.
        pending = 0
        if policy.prewake and hint_rate_per_s is not None:
            pending = max(
                0,
                self.gpus_for(hint_rate_per_s, policy.target_utilization)
                - self.awake,
            )
        self._pending_wakes = pending

        # Hysteresis sleeps: only in quiet epochs (no wake activity in
        # either direction), only after a sustained low streak, and sized
        # against the margined rate so the decision does not flap.
        slept = 0
        woke_this_epoch = reactive + self._matured_wakes
        if woke_this_epoch == 0 and pending == 0:
            hold_rate = max(routed_rate_per_s, hint_rate_per_s or 0.0)
            relaxed = self.gpus_for(
                hold_rate * policy.sleep_margin, policy.target_utilization
            )
            if self.awake > relaxed:
                self._low_streak += 1
                if self._low_streak >= policy.sleep_after_epochs:
                    slept = self.awake - relaxed
                    self._pending_sleeps = slept
                    self._low_streak = 0
            else:
                self._low_streak = 0
        else:
            self._low_streak = 0

        self.total_gpu_sleep_epochs += self.n_gpus - self.awake
        decision = CapacityDecision(
            awake=self.awake,
            serving_at_start=start,
            woken=woke_this_epoch,
            slept=slept,
            wake_delay_s=policy.wake_latency_s if reactive > 0 else 0.0,
            pending_wakes=pending,
        )
        self._matured_wakes = 0
        return decision
