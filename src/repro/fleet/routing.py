"""Per-epoch traffic routing across fleet regions.

The fleet coordinator owns one global Poisson workload; each epoch a
:class:`Router` splits its rate into per-region shares.  Splitting a
Poisson process by independent routing probabilities is Poisson thinning:
each region again sees a Poisson process at its assigned rate, which is why
the per-region control loops can keep the seed's evaluator machinery
unchanged.  Conservation is structural — every policy returns shares whose
rates sum to the global rate, so no arrival is dropped or double-counted.

Three policies, per the paper-adjacent systems (EcoServe, CarbonEdge):

* **static** — fixed geo-DNS-style split proportional to region capacity
  (or explicit weights).  With one region this is the identity split, which
  makes an N=1 fleet reproduce the single-cluster service bit-for-bit.
* **latency** — greedy water-fill in order of network latency: nearby
  regions first, subject to per-region capacity.  Carbon-blind.
* **carbon-greedy** — greedy water-fill in order of *effective carbon per
  request*: grid intensity x PUE x the region's joules/request at its
  marginal device.  On a homogeneous fleet the energy term is identical
  everywhere and the ranking degenerates to the classic cleanest-grid
  ordering (bit-for-bit the pre-heterogeneity behaviour); on a
  heterogeneous fleet it stops the router from dumping load onto a clean
  grid that happens to run inefficient silicon.  ``efficiency_weighted=
  False`` restores the intensity-only ranking (the ablation the hetero
  benchmark measures against).  Fills are subject to each region's
  capacity cap and an SLA cap (the highest rate at which the deployed
  configuration's estimated p95 plus the region's network latency still
  meets the SLA).  Every region keeps a small floor share — geo-resident
  traffic that cannot be shifted.
* **forecast-aware** — like carbon-greedy, but ranks regions on a blend of
  the *current* and the *forecast* effective intensity a lookahead horizon
  ahead.  Under per-epoch ramp limits (traffic shifts cost migrations, so a
  region's share may move only so fast) this pre-positions load before a
  predicted solar trough instead of chasing it after the fact.  A regret
  guard tracks matured forecasts against the observed intensities and
  decays the forecast weight toward myopic greedy when predictions go bad.

Ramp limits live in the :class:`RoutingContext` (``prev_shares`` +
``max_ramp_share``) and bind every policy equally; without them (the
default) each epoch's split is unconstrained, which is exactly the PR-1
behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "RoutingContext",
    "Router",
    "StaticRouter",
    "LatencyAwareRouter",
    "CarbonGreedyRouter",
    "ForecastAwareRouter",
    "plan_origin_cells",
    "ROUTER_NAMES",
    "make_router",
]


@dataclass(frozen=True)
class RoutingContext:
    """Everything a router may consult for one epoch's split.

    All arrays are indexed by region, in fleet order.  ``sla_cap_rates``
    holds the highest per-region rate at which the *deployed* configuration
    is expected to meet the SLA after adding the region's network latency
    (``inf`` before the first deployment).

    The optional fields extend the PR-1 context for forecast-driven and
    ramp-limited routing; their defaults reproduce the original semantics
    exactly.  ``forecast_ci`` is each region's predicted *mean* grid
    intensity over the window ``(t_h, t_h + lookahead_h]`` (``None`` when
    the coordinator provisioned no forecasters); ``prev_shares`` is last
    epoch's realized split; ``max_ramp_share`` bounds how much share a
    region may *gain* per epoch and ``max_drain_share`` how much it may
    *lose* (1.0 = unconstrained — shifting is free).  The two are
    asymmetric on purpose: admitting new traffic is a DNS/admission flip,
    but shedding resident traffic waits for sessions to drain — which is
    what makes diving into a briefly-clean region a trap worth forecasting
    around.
    """

    t_h: float
    global_rate_per_s: float
    ci: np.ndarray
    pue: np.ndarray
    net_latency_ms: np.ndarray
    nominal_rates: np.ndarray
    capacity_rates: np.ndarray
    sla_cap_rates: np.ndarray
    floor_rates: np.ndarray
    forecast_ci: np.ndarray | None = None
    lookahead_h: float = 0.0
    prev_shares: np.ndarray | None = None
    max_ramp_share: float = 1.0
    max_drain_share: float | None = None
    #: Per-region joules/request at the marginal device (``None`` when the
    #: coordinator predates device heterogeneity).  On a homogeneous fleet
    #: every entry is equal, and efficiency-aware rankings reduce exactly
    #: to the intensity rankings.
    energy_per_request_j: np.ndarray | None = None
    #: Predicted *global* arrival rate one epoch ahead (``None`` unless the
    #: coordinator runs pre-wake gating).  Routers use it to project where
    #: the next epoch's traffic will land, so capacity can be woken ahead
    #: of the demand instead of behind it.
    forecast_global_rate_per_s: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.max_ramp_share <= 1.0:
            raise ValueError(
                f"ramp share must be in (0, 1], got {self.max_ramp_share}"
            )
        if self.max_drain_share is not None and not (
            0.0 < self.max_drain_share <= 1.0
        ):
            raise ValueError(
                f"drain share must be in (0, 1], got {self.max_drain_share}"
            )

    @property
    def drain_share(self) -> float:
        """The effective per-epoch share-loss bound.

        ``None`` means unconstrained (1.0) — matching the coordinator's
        documented "no drain limit" default — not "same as the ramp".
        """
        return 1.0 if self.max_drain_share is None else self.max_drain_share

    @property
    def n_regions(self) -> int:
        return int(self.ci.size)

    @property
    def effective_ci(self) -> np.ndarray:
        """Grid intensity scaled by PUE: the true gCO2/kWh of IT energy."""
        return self.ci * self.pue

    @property
    def effective_forecast_ci(self) -> np.ndarray | None:
        """Forecast intensity scaled by PUE (``None`` without forecasts)."""
        if self.forecast_ci is None:
            return None
        return self.forecast_ci * self.pue

    def efficiency_scores(self, intensity_scores: np.ndarray) -> np.ndarray:
        """Scale intensity scores to effective gCO2/request.

        Multiplies by each region's marginal-device joules/request so the
        ranking prices silicon as well as grid.  When the energy signal is
        missing **or flat** (every region runs the same device) the
        intensity scores are returned untouched — not merely an equal
        reordering, the *identical array* — which is what keeps the
        homogeneous fleet bit-for-bit on the pre-heterogeneity path.

        >>> import numpy as np
        >>> ctx = RoutingContext(
        ...     t_h=0.0, global_rate_per_s=10.0,
        ...     ci=np.array([100.0, 200.0]), pue=np.array([1.0, 1.0]),
        ...     net_latency_ms=np.zeros(2), nominal_rates=np.ones(2),
        ...     capacity_rates=np.ones(2), sla_cap_rates=np.ones(2),
        ...     floor_rates=np.zeros(2),
        ...     energy_per_request_j=np.array([12.0, 5.0]),
        ... )
        >>> ctx.efficiency_scores(ctx.effective_ci)  # dirty grid, lean GPU
        array([1200., 1000.])
        """
        e = self.energy_per_request_j
        if e is None or float(np.ptp(e)) == 0.0:
            return intensity_scores
        return intensity_scores * e


class Router(ABC):
    """A per-epoch traffic splitting policy.

    Every policy must return strictly positive shares: a region with zero
    traffic has no defined service measurement, so "drained" regions keep
    a floor share instead (see :class:`CarbonGreedyRouter`).  Policies
    that consult ``ctx.sla_cap_rates`` must set ``needs_sla_caps`` so the
    coordinator knows to run the (bisection-priced) SLA probes; policies
    that consult ``ctx.forecast_ci`` must set ``needs_forecast`` so the
    coordinator provisions per-region forecasters.
    """

    name: str = "router"
    needs_sla_caps = False
    needs_forecast = False

    @abstractmethod
    def split(self, ctx: RoutingContext) -> np.ndarray:
        """Return per-region shares of the global rate (positive, sum 1)."""

    def region_order(self, ctx: RoutingContext) -> np.ndarray | None:
        """The policy's region preference for cell-level (demand) planning.

        Demand-mode fleets route (origin, region) *cells* through
        :func:`plan_origin_cells`, which needs only the policy's region
        ordering; ``None`` means "no preference" (the static geo-DNS split
        keeps its proportional shares and stays pair-blind — it is the
        baseline the pair-aware policies are measured against).
        """
        return None

    def reset(self) -> None:
        """Clear any cross-epoch state before a fresh run (no-op default).

        The coordinator calls this at the start of every run so a router
        instance can be reused across runs (and fleets) without leaking
        pending forecasts or regret statistics between them.
        """

    def capacity_hint(self, ctx: RoutingContext) -> np.ndarray | None:
        """Per-region rates the policy expects to route in the near future.

        Pre-wake gating consults this to wake GPUs *before* the demand
        lands (a wake completes within one epoch, so the hint's horizon is
        the next epoch).  ``None`` — the default — means the policy offers
        no projection and gated regions fall back to reactive wakes, which
        pay the wake-latency window.
        """
        return None

    def rates(self, ctx: RoutingContext) -> np.ndarray:
        """Convenience: the per-region arrival rates this epoch."""
        return self.split(ctx) * ctx.global_rate_per_s


@dataclass
class StaticRouter(Router):
    """Fixed split proportional to nominal region capacity (or weights).

    The carbon-unaware baseline: what a geo-DNS round-robin sized to each
    region's provisioning does.  With a single region the share is exactly
    1.0, so the fleet path degenerates to the seed single-cluster loop.
    """

    weights: np.ndarray | None = None
    name: str = field(default="static", init=False)

    def split(self, ctx: RoutingContext) -> np.ndarray:
        w = (
            np.asarray(self.weights, dtype=np.float64)
            if self.weights is not None
            else ctx.nominal_rates
        )
        if w.size != ctx.n_regions:
            raise ValueError(
                f"{w.size} weights for {ctx.n_regions} regions"
            )
        if np.any(w <= 0):
            # A zero-weight region would serve a zero rate, which has no
            # defined DES measurement; drop the region from the fleet
            # instead of routing nothing to it.
            raise ValueError("weights must be strictly positive")
        return w / w.sum()


def _ramp_up_caps(ctx: RoutingContext, caps: np.ndarray) -> np.ndarray:
    """Clamp per-region caps by the admission ramp: a region may gain at
    most ``max_ramp_share`` of the global rate over its previous share
    per epoch (no-op without history or with an unconstrained ramp)."""
    if ctx.prev_shares is not None and ctx.max_ramp_share < 1.0:
        caps = np.minimum(
            caps,
            (ctx.prev_shares + ctx.max_ramp_share) * ctx.global_rate_per_s,
        )
    return caps


def _ramp_envelope(ctx: RoutingContext) -> tuple[np.ndarray, np.ndarray]:
    """Per-region (floors, caps) honoring the context's ramp limits.

    Without ``prev_shares`` (or with an unconstrained ramp) this is exactly
    the PR-1 envelope: floors from the un-shiftable geo-resident traffic,
    caps from capacity and SLA.  With a ramp, each region's rate is further
    boxed into ``(prev_share ± max_ramp_share) * global_rate`` — traffic
    shifts cost connection draining and cache warm-up, so share moves only
    so fast per epoch.  Floors beat SLA caps (resident traffic cannot
    leave) and a floor sum exceeding the global rate — demand crashing
    faster than regions may drain — is scaled back proportionally.
    """
    floors = np.minimum(ctx.floor_rates, ctx.capacity_rates).astype(np.float64)
    caps = _ramp_up_caps(ctx, np.minimum(ctx.capacity_rates, ctx.sla_cap_rates))
    if ctx.prev_shares is not None and ctx.drain_share < 1.0:
        lo = (ctx.prev_shares - ctx.drain_share) * ctx.global_rate_per_s
        floors = np.maximum(floors, np.minimum(lo, ctx.capacity_rates))
    total_floor = float(floors.sum())
    if total_floor > ctx.global_rate_per_s:
        floors = floors * (ctx.global_rate_per_s / total_floor)
    return floors, caps


def _water_fill(ctx: RoutingContext, order: np.ndarray) -> np.ndarray:
    """Fill regions in ``order`` up to their caps, floors guaranteed first.

    Returns per-region *rates* summing to the global rate.  If the ordered
    caps cannot absorb everything (SLA or ramp caps too tight), the
    remainder spills proportionally to remaining *capacity* headroom; if
    even capacity is exhausted, proportionally to nominal rates —
    conservation always wins over caps, and the overloaded epochs show up
    in the DES measurements.

    The sequential fill is expressed as a prefix-sum over the ordered cap
    headrooms: region ``i`` in order takes
    ``clip(remaining - sum(room[:i]), 0, room[i])`` — property-tested
    against :func:`_water_fill_scalar`, the loop it replaces (identical
    up to float summation order; bit-for-bit on a single region).
    """
    floors, caps = _ramp_envelope(ctx)
    rates = floors.copy()
    remaining = ctx.global_rate_per_s - float(rates.sum())
    if remaining > 0.0:
        room = np.maximum(caps[order] - rates[order], 0.0)
        filled = np.cumsum(room)
        prior = filled - room
        take = np.clip(remaining - prior, 0.0, room)
        rates[order] += take
        remaining = max(0.0, remaining - float(filled[-1]))
    else:
        remaining = 0.0
    if remaining > 0.0:
        headroom = np.maximum(ctx.capacity_rates - rates, 0.0)
        basis = headroom if headroom.sum() > 0 else ctx.nominal_rates
        rates = rates + remaining * basis / basis.sum()
    return rates


def _water_fill_scalar(ctx: RoutingContext, order: np.ndarray) -> np.ndarray:
    """The original one-region-at-a-time fill, kept as the reference
    implementation for :func:`_water_fill`'s equivalence property tests."""
    floors, caps = _ramp_envelope(ctx)
    rates = floors.copy()
    remaining = ctx.global_rate_per_s - float(rates.sum())
    for idx in order:
        if remaining <= 0.0:
            break
        room = max(0.0, float(caps[idx] - rates[idx]))
        take = min(remaining, room)
        rates[idx] += take
        remaining -= take
    if remaining > 0.0:
        headroom = np.maximum(ctx.capacity_rates - rates, 0.0)
        basis = headroom if headroom.sum() > 0 else ctx.nominal_rates
        rates = rates + remaining * basis / basis.sum()
    return rates


@dataclass
class LatencyAwareRouter(Router):
    """Nearest-region-first water-fill, capacity-capped and carbon-blind."""

    name: str = field(default="latency", init=False)

    def region_order(self, ctx: RoutingContext) -> np.ndarray:
        return np.argsort(ctx.net_latency_ms, kind="stable")

    def split(self, ctx: RoutingContext) -> np.ndarray:
        return _water_fill(ctx, self.region_order(ctx)) / ctx.global_rate_per_s


@dataclass
class CarbonGreedyRouter(Router):
    """Cheapest-carbon-per-request water-fill under capacity and SLA caps.

    Shifts as much of the global workload as the caps allow toward the
    region with the lowest *effective gCO2 per request* this epoch — grid
    intensity x PUE x joules/request at the region's marginal device —
    then the next cheapest, and so on.  The SLA cap keeps the shift
    honest: a clean region only absorbs extra traffic up to the rate at
    which its deployed configuration still meets the SLA after the added
    network latency.

    ``efficiency_weighted=False`` is the intensity-only ablation: the
    pre-PR-4 ranking that chases clean grids even onto inefficient
    silicon.  On a homogeneous fleet the two are identical (the energy
    term is flat and drops out).

    >>> make_router("carbon-greedy").efficiency_weighted
    True
    >>> make_router("carbon-greedy", efficiency_weighted=False).name
    'carbon-greedy'
    """

    efficiency_weighted: bool = True
    name: str = field(default="carbon-greedy", init=False)
    needs_sla_caps = True

    def region_order(self, ctx: RoutingContext) -> np.ndarray:
        scores = ctx.effective_ci
        if self.efficiency_weighted:
            scores = ctx.efficiency_scores(scores)
        return np.argsort(scores, kind="stable")

    def split(self, ctx: RoutingContext) -> np.ndarray:
        return _water_fill(ctx, self.region_order(ctx)) / ctx.global_rate_per_s


@dataclass
class ForecastAwareRouter(Router):
    """Cleanest-*window* water-fill: rank on blended current + forecast ci.

    The forecast term is the *mean* predicted effective intensity over the
    next ``lookahead_h`` hours — not the point value at the horizon's end.
    Under ramp limits a region's share can only move a few percent per
    epoch, so traffic placed now is effectively committed for the next
    several hours; the window mean is the intensity that commitment will
    actually be charged at.  (A point forecast at ``t + H`` fails
    subtly: with ``H`` comparable to a solar trough's width it starts
    draining the trough region mid-trough, and its pre-shift gains cancel
    against its early exits — measured, not hypothetical.)

    The score each region is ordered by is
    ``(1 - w) * effective_ci(now) + w * mean effective_ci(t .. t+H)``.
    Myopically (``w = 0``) this is :class:`CarbonGreedyRouter`; at ``w = 1``
    it positions purely for the coming window.  The blend is what lets the
    fleet start walking share toward a region hours before its solar
    trough — the pre-shift the ROADMAP calls proactive routing.

    The **regret guard** makes the forecast earn its weight: every split
    files the prediction it acted on, and when the lookahead horizon
    matures the prediction is scored against the observed intensity.  The
    running relative MAE above ``regret_threshold`` decays the blend
    weight proportionally (a forecaster twice as bad as tolerated gets
    half the trust), so a broken forecaster degrades the policy gracefully
    toward myopic carbon-greedy instead of routing on fiction.
    """

    lookahead_h: float = 6.0
    blend: float = 0.6
    regret_threshold: float = 0.25
    regret_memory: float = 0.9
    #: Weight rankings by each region's marginal-device joules/request
    #: (identical to the intensity ranking on a homogeneous fleet); the
    #: blended intensity score and the pre-wake projection both get the
    #: efficiency scaling, while the regret guard keeps scoring the raw
    #: intensity forecasts (the forecaster predicts grids, not silicon).
    efficiency_weighted: bool = True
    name: str = field(default="forecast-aware", init=False)
    needs_sla_caps = True
    needs_forecast = True
    _pending: list[tuple[float, np.ndarray]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _observed: list[tuple[float, np.ndarray]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _err_ewma: float = field(default=0.0, init=False, repr=False)
    _ref_ewma: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.lookahead_h < 0:
            raise ValueError(f"lookahead must be non-negative, got {self.lookahead_h}")
        if not 0.0 <= self.blend <= 1.0:
            raise ValueError(f"blend must be in [0, 1], got {self.blend}")
        if self.regret_threshold <= 0:
            raise ValueError(
                f"regret threshold must be positive, got {self.regret_threshold}"
            )
        if not 0.0 <= self.regret_memory < 1.0:
            raise ValueError(
                f"regret memory must be in [0, 1), got {self.regret_memory}"
            )

    @property
    def forecast_weight(self) -> float:
        """The blend weight after the regret guard's discount."""
        if self._ref_ewma <= 0.0:
            return self.blend
        rel_mae = self._err_ewma / self._ref_ewma
        if rel_mae <= self.regret_threshold:
            return self.blend
        return self.blend * (self.regret_threshold / rel_mae)

    def reset(self) -> None:
        self._pending = []
        self._observed = []
        self._err_ewma = 0.0
        self._ref_ewma = 0.0

    def _settle_matured(self, ctx: RoutingContext) -> None:
        """Score window predictions whose windows have fully elapsed.

        A prediction filed at ``t`` claimed the mean intensity over
        ``(t, t + lookahead]``; once ``t + lookahead`` arrives, the claim is
        compared against the mean of the intensities actually observed over
        that window (the router sees every epoch's ``ctx.ci``, so the
        realized mean is just bookkeeping).
        """
        self._observed.append((ctx.t_h, np.array(ctx.ci, dtype=np.float64)))
        horizon = max(ctx.lookahead_h, self.lookahead_h)
        self._observed = [
            o for o in self._observed if o[0] >= ctx.t_h - horizon - 1e-9
        ]
        matured = [p for p in self._pending if p[0] <= ctx.t_h + 1e-9]
        if not matured:
            return
        self._pending = [p for p in self._pending if p[0] > ctx.t_h + 1e-9]
        for target_t, predicted in matured:
            # The prediction covered (filing time, filing time + horizon];
            # exclude the filing-time observation itself or a trending
            # signal penalizes even a perfect forecaster.
            window = [
                ci
                for t, ci in self._observed
                if target_t - horizon + 1e-9 < t <= target_t + 1e-9
            ]
            if not window:
                # Sub-epoch lookahead: no observation falls strictly
                # inside the window.  Score against the current reading so
                # the guard still learns instead of going silently inert.
                window = [np.array(ctx.ci, dtype=np.float64)]
            realized = np.mean(window, axis=0)
            err = float(np.mean(np.abs(predicted - realized)))
            ref = float(np.mean(realized))
            m = self.regret_memory
            self._err_ewma = m * self._err_ewma + (1.0 - m) * err
            self._ref_ewma = m * self._ref_ewma + (1.0 - m) * ref

    def _score(self, ctx: RoutingContext) -> np.ndarray:
        """Blended ranking score; also advances the regret bookkeeping.

        Called exactly once per epoch (by either :meth:`split` or
        :meth:`region_order`) — it settles matured predictions and files
        the one this epoch acts on.
        """
        self._settle_matured(ctx)
        forecast = ctx.effective_forecast_ci
        if forecast is None:
            # No forecasters provisioned: degrade to myopic carbon-greedy.
            return ctx.effective_ci
        w = self.forecast_weight
        self._pending.append(
            (ctx.t_h + ctx.lookahead_h, np.array(ctx.forecast_ci, dtype=np.float64))
        )
        return (1.0 - w) * ctx.effective_ci + w * forecast

    def region_order(self, ctx: RoutingContext) -> np.ndarray:
        scores = self._score(ctx)
        if self.efficiency_weighted:
            scores = ctx.efficiency_scores(scores)
        return np.argsort(scores, kind="stable")

    def split(self, ctx: RoutingContext) -> np.ndarray:
        return _water_fill(ctx, self.region_order(ctx)) / ctx.global_rate_per_s

    def capacity_hint(self, ctx: RoutingContext) -> np.ndarray | None:
        """Project next-epoch per-region rates from the lookahead window.

        Replays the water-fill with (a) regions ordered by the *forecast*
        effective intensity — where this policy will be steering traffic
        shortly — and (b) the predicted global rate one epoch ahead.  The
        pre-wake request each gated region receives is its rate in that
        projection.  Deliberately does not call :meth:`_score`: the hint
        must not file or settle regret-guard predictions, which happen
        exactly once per epoch in the real split.
        """
        if (
            ctx.effective_forecast_ci is None
            or ctx.forecast_global_rate_per_s is None
            or ctx.forecast_global_rate_per_s <= 0.0
        ):
            return None
        scores = ctx.effective_forecast_ci
        if self.efficiency_weighted:
            scores = ctx.efficiency_scores(scores)
        order = np.argsort(scores, kind="stable")
        projected = replace(
            ctx, global_rate_per_s=float(ctx.forecast_global_rate_per_s)
        )
        return _water_fill(projected, order)


def plan_origin_cells(
    ctx: RoutingContext,
    order: np.ndarray,
    origin_rates: np.ndarray,
    latency_ms: np.ndarray,
    user_targets_ms: np.ndarray,
    sla_rate_fn,
    measured_p95_ms: np.ndarray | None = None,
    prev_plan: np.ndarray | None = None,
    session_keep_frac: float = 0.0,
    resident_floor_share: float = 0.0,
) -> np.ndarray:
    """Pair-aware greedy fill over (origin, region) cells.

    The demand-mode replacement for :func:`_water_fill`: instead of
    splitting one scalar rate across regions and mapping origins on
    afterwards, traffic is placed cell by cell so the SLA is charged per
    (origin, serving-region) pair *while routing*, not just when judged.

    Serving origin ``o`` at region ``r`` leaves the service a latency
    budget of ``user_targets_ms[r] - latency_ms[o, r]``; because one queue
    serves everyone, a region's admissible total rate is governed by the
    *tightest* budget among the origins it serves —
    ``sla_rate_fn(r, budget)`` (a bisection against the deployed
    configuration's p95) prices that.  Cells are visited in the policy's
    region ``order``, nearest origins first within a region, so a region
    takes cheap traffic before far traffic that would throttle it.

    ``measured_p95_ms`` (the previous epoch's DES measurement per region,
    when available) double-checks the analytic bisection: a cell is only
    filled if the *measured* service tail also fits its budget — the
    analytic estimator can flatter a freshly-booted configuration by a
    few milliseconds, exactly enough to park far-origin traffic on the
    wrong side of its SLA.

    Three kinds of pinned traffic precede the policy fill:

    * **session retention** — ``session_keep_frac`` of each cell of
      ``prev_plan`` (scaled down with its origin's demand) stays where it
      is: resident sessions drain, they do not teleport.  This is the
      asymmetry that makes chasing a briefly-clean grid a trap — you can
      admit traffic into it instantly, but you leave at drain speed.
    * **data residency** — ``resident_floor_share`` of each origin's rate
      is pinned to the origin's nearest region.
    * **ramp-up caps** — a region may gain at most
      ``ctx.max_ramp_share`` of the global rate over its previous share
      per epoch (admission warm-up), via ``ctx.prev_shares``.

    Leftover supply that no SLA budget can absorb spills to capacity
    headroom in latency order (conservation beats caps, as in
    :func:`_water_fill`); if even capacity is exhausted the residue lands
    proportionally to nominal rates and the overload shows up in the DES
    measurements.

    Returns the (origin x region) rate plan; row sums equal
    ``origin_rates`` and the grand total the global rate.

    A minimal two-origin, two-region plan — region 0 is preferred (say,
    the cleaner grid), each origin is near one region, and conservation
    is structural:

    >>> import numpy as np
    >>> ctx = RoutingContext(
    ...     t_h=0.0, global_rate_per_s=30.0,
    ...     ci=np.array([100.0, 300.0]), pue=np.ones(2),
    ...     net_latency_ms=np.array([5.0, 30.0]),
    ...     nominal_rates=np.array([20.0, 10.0]),
    ...     capacity_rates=np.array([26.0, 13.0]),
    ...     sla_cap_rates=np.array([26.0, 13.0]),
    ...     floor_rates=np.array([1.0, 0.5]))
    >>> latency = np.array([[5.0, 80.0], [70.0, 8.0]])  # origins x regions
    >>> plan = plan_origin_cells(
    ...     ctx, order=np.array([0, 1]),
    ...     origin_rates=np.array([18.0, 12.0]),
    ...     latency_ms=latency,
    ...     user_targets_ms=np.array([120.0, 120.0]),
    ...     sla_rate_fn=lambda r, budget_ms: ctx.sla_cap_rates[r])
    >>> bool(np.allclose(plan.sum(axis=1), [18.0, 12.0]))  # demand conserved
    True
    >>> bool(plan[0, 0] > plan[0, 1])  # origin 0 served mostly at region 0
    True
    """
    n_o, n_r = latency_ms.shape
    latency_ms = np.asarray(latency_ms, dtype=np.float64)
    user_targets_ms = np.asarray(user_targets_ms, dtype=np.float64)
    supply = np.asarray(origin_rates, dtype=np.float64).copy()
    plan = np.zeros((n_o, n_r))
    totals = np.zeros(n_r)
    caps = _ramp_up_caps(ctx, np.minimum(ctx.capacity_rates, ctx.sla_cap_rates))
    # The tightest service budget each region has committed to so far.
    # Only *meetable* budgets tighten it: a cell whose hop alone exceeds
    # the target violates at any rate — it is lost regardless of the
    # region's total, so it must not throttle the region's other streams.
    budgets = np.full(n_r, np.inf)

    def place(o: int, r: int, amount: float) -> float:
        take = min(supply[o], amount)
        if take <= 0.0:
            return 0.0
        plan[o, r] += take
        supply[o] -= take
        totals[r] += take
        pair_budget = user_targets_ms[r] - latency_ms[o, r]
        if pair_budget > 0.0:
            budgets[r] = min(budgets[r], pair_budget)
        return take

    # 1. Session retention: prior cells persist, scaled down with their
    # origin's demand (sessions end, they don't multiply), keep-fraction
    # bounded by how fast resident traffic can be drained away.  Cells
    # below a de-minimis share of their origin's demand are dropped —
    # otherwise a geometrically-decaying residue keeps a far cell alive
    # (and its tight budget throttling the region) for the whole run.
    # Whole-matrix placement: the keep matrix's row sums never exceed the
    # origin's supply (``ratio`` caps them at ``keep_frac * supply``), so
    # no cell is supply-limited and the per-cell ``place`` loop reduces
    # to masked array adds.  Region budgets tighten by the min eligible
    # pair budget — a min is placement-order-free.
    if prev_plan is not None and session_keep_frac > 0.0:
        prev_rows = prev_plan.sum(axis=1)
        ratio = np.where(
            prev_rows > 0.0,
            np.minimum(1.0, supply / np.maximum(prev_rows, 1e-300)),
            0.0,
        )
        keep = prev_plan * ratio[:, None] * session_keep_frac
        tiny = 1e-3 * np.asarray(origin_rates, dtype=np.float64)
        placed = np.where(keep > tiny[:, None], keep, 0.0)
        plan += placed
        supply = np.maximum(supply - placed.sum(axis=1), 0.0)
        totals += placed.sum(axis=0)
        pair_budgets = user_targets_ms[None, :] - latency_ms
        eligible = np.where(
            (placed > 0.0) & (pair_budgets > 0.0), pair_budgets, np.inf
        )
        budgets = np.minimum(budgets, eligible.min(axis=0))

    # 2. Data residency: a floor share of each origin stays at its
    # nearest region, whatever the policy prefers.  Each origin touches
    # one distinct (origin, home) cell, so the per-origin loop is a
    # single gather/scatter.
    if resident_floor_share > 0.0:
        homes = np.argmin(latency_ms, axis=1)
        rows = np.arange(n_o)
        floor = resident_floor_share * np.asarray(origin_rates, dtype=np.float64)
        take = np.clip(floor - plan[rows, homes], 0.0, supply)
        plan[rows, homes] += take
        supply = supply - take
        np.add.at(totals, homes, take)
        pair_budgets = user_targets_ms[homes] - latency_ms[rows, homes]
        eligible = (take > 0.0) & (pair_budgets > 0.0)
        np.minimum.at(budgets, homes[eligible], pair_budgets[eligible])

    # 2b. Keep-alive floors: a region that is nobody's home (two regions
    # in one zone) could otherwise be planned to exactly zero on the
    # first epoch, and a zero-rate region has no defined service
    # measurement.  Draw up to the context's per-region floor from the
    # nearest origins — nearest-first keeps the draw SLA-cheap.
    keep_alive = np.minimum(ctx.floor_rates, ctx.capacity_rates)
    near_origins = np.argsort(latency_ms, axis=0, kind="stable")
    for r in range(n_r):
        shortfall = float(keep_alive[r]) - totals[r]
        for o in near_origins[:, r]:
            if shortfall <= 0.0:
                break
            shortfall -= place(int(o), r, shortfall)

    # 3. Policy fill: regions in preference order, near origins first.
    for r in order:
        for o in near_origins[:, r]:
            o = int(o)
            if supply[o] <= 0.0:
                continue
            budget = min(budgets[r], user_targets_ms[r] - latency_ms[o, r])
            if budget <= 0.0:
                continue  # this pair can never meet the SLA
            if (
                measured_p95_ms is not None
                and np.isfinite(measured_p95_ms[r])
                and measured_p95_ms[r] > budget
            ):
                continue  # the measured tail already blows this budget
            cap = min(caps[r], sla_rate_fn(r, float(budget)))
            room = cap - totals[r]
            if room <= 0.0:
                continue
            place(o, r, room)

    # 4. Conservation spill: capacity headroom in latency order, then
    # proportional to nominal rates.
    if supply.sum() > 1e-12:
        for o in range(n_o):
            for r in np.argsort(latency_ms[o], kind="stable"):
                if supply[o] <= 0.0:
                    break
                room = ctx.capacity_rates[r] - totals[r]
                if room > 0.0:
                    place(o, int(r), room)
    leftover = float(supply.sum())
    if leftover > 1e-12:
        basis = ctx.nominal_rates / ctx.nominal_rates.sum()
        for o in range(n_o):
            if supply[o] > 0.0:
                amount = supply[o]
                plan[o] += amount * basis
                totals += amount * basis
                supply[o] = 0.0
    return plan


def _plan_origin_cells_scalar(
    ctx: RoutingContext,
    order: np.ndarray,
    origin_rates: np.ndarray,
    latency_ms: np.ndarray,
    user_targets_ms: np.ndarray,
    sla_rate_fn,
    measured_p95_ms: np.ndarray | None = None,
    prev_plan: np.ndarray | None = None,
    session_keep_frac: float = 0.0,
    resident_floor_share: float = 0.0,
) -> np.ndarray:
    """The original cell-by-cell ``place()`` implementation of
    :func:`plan_origin_cells`, kept verbatim as the reference for the
    vectorized version's equivalence property tests."""
    n_o, n_r = latency_ms.shape
    supply = np.asarray(origin_rates, dtype=np.float64).copy()
    plan = np.zeros((n_o, n_r))
    totals = np.zeros(n_r)
    caps = _ramp_up_caps(ctx, np.minimum(ctx.capacity_rates, ctx.sla_cap_rates))
    budgets = np.full(n_r, np.inf)

    def place(o: int, r: int, amount: float) -> float:
        take = min(supply[o], amount)
        if take <= 0.0:
            return 0.0
        plan[o, r] += take
        supply[o] -= take
        totals[r] += take
        pair_budget = user_targets_ms[r] - latency_ms[o, r]
        if pair_budget > 0.0:
            budgets[r] = min(budgets[r], pair_budget)
        return take

    if prev_plan is not None and session_keep_frac > 0.0:
        prev_rows = prev_plan.sum(axis=1)
        ratio = np.where(
            prev_rows > 0.0,
            np.minimum(1.0, supply / np.maximum(prev_rows, 1e-300)),
            0.0,
        )
        keep = prev_plan * ratio[:, None] * session_keep_frac
        tiny = 1e-3 * np.asarray(origin_rates, dtype=np.float64)
        for o in range(n_o):
            for r in range(n_r):
                if keep[o, r] > tiny[o]:
                    place(o, r, float(keep[o, r]))

    if resident_floor_share > 0.0:
        homes = np.argmin(latency_ms, axis=1)
        for o in range(n_o):
            floor = resident_floor_share * float(origin_rates[o])
            short = floor - plan[o, homes[o]]
            if short > 0.0:
                place(o, int(homes[o]), short)

    keep_alive = np.minimum(ctx.floor_rates, ctx.capacity_rates)
    for r in range(n_r):
        shortfall = float(keep_alive[r]) - totals[r]
        for o in np.argsort(latency_ms[:, r], kind="stable"):
            if shortfall <= 0.0:
                break
            shortfall -= place(int(o), r, shortfall)

    for r in order:
        for o in np.argsort(latency_ms[:, r], kind="stable"):
            o = int(o)
            if supply[o] <= 0.0:
                continue
            budget = min(budgets[r], user_targets_ms[r] - latency_ms[o, r])
            if budget <= 0.0:
                continue
            if (
                measured_p95_ms is not None
                and np.isfinite(measured_p95_ms[r])
                and measured_p95_ms[r] > budget
            ):
                continue
            cap = min(caps[r], sla_rate_fn(r, float(budget)))
            room = cap - totals[r]
            if room <= 0.0:
                continue
            place(o, r, room)

    if supply.sum() > 1e-12:
        for o in range(n_o):
            for r in np.argsort(latency_ms[o], kind="stable"):
                if supply[o] <= 0.0:
                    break
                room = ctx.capacity_rates[r] - totals[r]
                if room > 0.0:
                    place(o, int(r), room)
    leftover = float(supply.sum())
    if leftover > 1e-12:
        basis = ctx.nominal_rates / ctx.nominal_rates.sum()
        for o in range(n_o):
            if supply[o] > 0.0:
                amount = supply[o]
                plan[o] += amount * basis
                totals += amount * basis
                supply[o] = 0.0
    return plan


ROUTER_NAMES = ("static", "latency", "carbon-greedy", "forecast-aware")


def make_router(name: str, **kwargs) -> Router:
    """Factory by policy name (one of :data:`ROUTER_NAMES`)."""
    classes = {
        "static": StaticRouter,
        "latency": LatencyAwareRouter,
        "carbon-greedy": CarbonGreedyRouter,
        "forecast-aware": ForecastAwareRouter,
    }
    try:
        cls = classes[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; valid: {', '.join(ROUTER_NAMES)}"
        ) from None
    return cls(**kwargs)
