"""Per-epoch traffic routing across fleet regions.

The fleet coordinator owns one global Poisson workload; each epoch a
:class:`Router` splits its rate into per-region shares.  Splitting a
Poisson process by independent routing probabilities is Poisson thinning:
each region again sees a Poisson process at its assigned rate, which is why
the per-region control loops can keep the seed's evaluator machinery
unchanged.  Conservation is structural — every policy returns shares whose
rates sum to the global rate, so no arrival is dropped or double-counted.

Three policies, per the paper-adjacent systems (EcoServe, CarbonEdge):

* **static** — fixed geo-DNS-style split proportional to region capacity
  (or explicit weights).  With one region this is the identity split, which
  makes an N=1 fleet reproduce the single-cluster service bit-for-bit.
* **latency** — greedy water-fill in order of network latency: nearby
  regions first, subject to per-region capacity.  Carbon-blind.
* **carbon-greedy** — greedy water-fill in order of *effective* carbon
  intensity (grid intensity x PUE): cleanest grid first, subject to each
  region's capacity cap and an SLA cap (the highest rate at which the
  deployed configuration's estimated p95 plus the region's network latency
  still meets the SLA).  Every region keeps a small floor share —
  geo-resident traffic that cannot be shifted.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RoutingContext",
    "Router",
    "StaticRouter",
    "LatencyAwareRouter",
    "CarbonGreedyRouter",
    "ROUTER_NAMES",
    "make_router",
]


@dataclass(frozen=True)
class RoutingContext:
    """Everything a router may consult for one epoch's split.

    All arrays are indexed by region, in fleet order.  ``sla_cap_rates``
    holds the highest per-region rate at which the *deployed* configuration
    is expected to meet the SLA after adding the region's network latency
    (``inf`` before the first deployment).
    """

    t_h: float
    global_rate_per_s: float
    ci: np.ndarray
    pue: np.ndarray
    net_latency_ms: np.ndarray
    nominal_rates: np.ndarray
    capacity_rates: np.ndarray
    sla_cap_rates: np.ndarray
    floor_rates: np.ndarray

    @property
    def n_regions(self) -> int:
        return int(self.ci.size)

    @property
    def effective_ci(self) -> np.ndarray:
        """Grid intensity scaled by PUE: the true gCO2/kWh of IT energy."""
        return self.ci * self.pue


class Router(ABC):
    """A per-epoch traffic splitting policy.

    Every policy must return strictly positive shares: a region with zero
    traffic has no defined service measurement, so "drained" regions keep
    a floor share instead (see :class:`CarbonGreedyRouter`).  Policies
    that consult ``ctx.sla_cap_rates`` must set ``needs_sla_caps`` so the
    coordinator knows to run the (bisection-priced) SLA probes.
    """

    name: str = "router"
    needs_sla_caps = False

    @abstractmethod
    def split(self, ctx: RoutingContext) -> np.ndarray:
        """Return per-region shares of the global rate (positive, sum 1)."""

    def rates(self, ctx: RoutingContext) -> np.ndarray:
        """Convenience: the per-region arrival rates this epoch."""
        return self.split(ctx) * ctx.global_rate_per_s


@dataclass
class StaticRouter(Router):
    """Fixed split proportional to nominal region capacity (or weights).

    The carbon-unaware baseline: what a geo-DNS round-robin sized to each
    region's provisioning does.  With a single region the share is exactly
    1.0, so the fleet path degenerates to the seed single-cluster loop.
    """

    weights: np.ndarray | None = None
    name: str = field(default="static", init=False)

    def split(self, ctx: RoutingContext) -> np.ndarray:
        w = (
            np.asarray(self.weights, dtype=np.float64)
            if self.weights is not None
            else ctx.nominal_rates
        )
        if w.size != ctx.n_regions:
            raise ValueError(
                f"{w.size} weights for {ctx.n_regions} regions"
            )
        if np.any(w <= 0):
            # A zero-weight region would serve a zero rate, which has no
            # defined DES measurement; drop the region from the fleet
            # instead of routing nothing to it.
            raise ValueError("weights must be strictly positive")
        return w / w.sum()


def _water_fill(ctx: RoutingContext, order: np.ndarray) -> np.ndarray:
    """Fill regions in ``order`` up to their caps, floors guaranteed first.

    Returns per-region *rates* summing to the global rate.  If the ordered
    caps cannot absorb everything (SLA caps too tight), the remainder spills
    proportionally to remaining *capacity* headroom; if even capacity is
    exhausted, proportionally to nominal rates — conservation always wins
    over caps, and the overloaded epochs show up in the DES measurements.
    """
    rates = np.minimum(ctx.floor_rates, ctx.capacity_rates).astype(np.float64)
    remaining = ctx.global_rate_per_s - float(rates.sum())
    caps = np.minimum(ctx.capacity_rates, ctx.sla_cap_rates)
    for idx in order:
        if remaining <= 0.0:
            break
        room = max(0.0, float(caps[idx] - rates[idx]))
        take = min(remaining, room)
        rates[idx] += take
        remaining -= take
    if remaining > 0.0:
        headroom = np.maximum(ctx.capacity_rates - rates, 0.0)
        basis = headroom if headroom.sum() > 0 else ctx.nominal_rates
        rates = rates + remaining * basis / basis.sum()
    return rates


@dataclass
class LatencyAwareRouter(Router):
    """Nearest-region-first water-fill, capacity-capped and carbon-blind."""

    name: str = field(default="latency", init=False)

    def split(self, ctx: RoutingContext) -> np.ndarray:
        order = np.argsort(ctx.net_latency_ms, kind="stable")
        return _water_fill(ctx, order) / ctx.global_rate_per_s


@dataclass
class CarbonGreedyRouter(Router):
    """Cleanest-grid-first water-fill under capacity and SLA caps.

    Shifts as much of the global workload as the caps allow toward the
    region with the lowest effective carbon intensity this epoch, then the
    next cleanest, and so on.  The SLA cap keeps the shift honest: a clean
    region only absorbs extra traffic up to the rate at which its deployed
    configuration still meets the SLA after the added network latency.
    """

    name: str = field(default="carbon-greedy", init=False)
    needs_sla_caps = True

    def split(self, ctx: RoutingContext) -> np.ndarray:
        order = np.argsort(ctx.effective_ci, kind="stable")
        return _water_fill(ctx, order) / ctx.global_rate_per_s


ROUTER_NAMES = ("static", "latency", "carbon-greedy")


def make_router(name: str, **kwargs) -> Router:
    """Factory by policy name (``"static"``, ``"latency"``, ``"carbon-greedy"``)."""
    classes = {
        "static": StaticRouter,
        "latency": LatencyAwareRouter,
        "carbon-greedy": CarbonGreedyRouter,
    }
    try:
        cls = classes[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; valid: {', '.join(ROUTER_NAMES)}"
        ) from None
    return cls(**kwargs)
