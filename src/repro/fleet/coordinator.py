"""FleetCoordinator: N regional control loops under one routed workload.

The coordinator owns the global workload and advances all regions in
lock-step epochs.  Each epoch it reads every region's grid intensity,
builds a :class:`RoutingContext` (capacity caps, SLA caps, un-shiftable
floors, optionally per-region intensity forecasts and ramp limits) and lets
the :class:`~repro.fleet.routing.Router` split the global rate; each region
then runs exactly the seed controller epoch at its assigned rate —
monitor, re-optimize on the 5% trigger, serve, account.

Two demand modes:

* **constant** (``demand=None``, the PR-1 path) — the global rate is the
  fixed sum of the regions' nominal sizings.  With one region and the
  static router the coordinator is a transparent wrapper: the single
  region receives precisely its nominal rate every epoch and the resulting
  :class:`~repro.core.controller.RunResult` is bit-for-bit the seed
  :meth:`CarbonAwareInferenceService.run` output.
* **geo-diurnal** (``demand=`` a :class:`~repro.demand.DemandModel` or a
  kind name) — per-origin nonstationary rates from :mod:`repro.demand`
  drive a time-varying global rate; an origin→region
  :class:`~repro.demand.LatencyMatrix` prices every (origin,
  serving-region) network hop, tightens each region's SLA baseline by its
  nearest-origin hop (farther origins are charged per pair at routing and
  judgment time), and each epoch's traffic is placed cell by cell by a
  pair-aware planner so SLA attainment is charged per (origin, region)
  pair.  The degenerate
  ``ConstantDemandModel`` with a single co-located origin reproduces the
  constant path bit-for-bit (asserted in tests).

With elastic capacity (``gating=``) the epoch becomes a **gate → route →
wake** pipeline: scheduled capacity transitions land before the routing
envelope is computed, the router splits the rate against physical
capacity, and each region then reconciles its routed rate with its awake
pool — waking GPUs reactively (a wake-latency window served at the
pre-wake capacity) or pre-waking them from the forecast-aware router's
lookahead hints.  Sleeping GPUs are charged the power model's sleep-state
watts and wake transitions their reload energy, folded into the per-epoch
records so every carbon number sees them.  ``gating=None`` (default) is
the always-on fleet, bit-for-bit the PR-1/PR-2 behaviour.

With a deferrable batch class (``batch=``) the epoch becomes the full
**gate → route → admit-batch → wake → step** pipeline: after interactive
routing the :class:`~repro.shifting.TemporalScheduler` releases queued
batch work into the epoch's *leftover* awake, SLA-safe capacity — only
when the epoch is forecast-clean relative to the windows still inside
each lot's deadline, or when a deadline forces it — and its hold hints
ask the capacity managers to keep GPUs awake through clean valleys
instead of sleeping past them.  Batch traffic rides the same
``service.step`` rates as interactive traffic, so the pool-aware
evaluators price its energy and carbon with no second accounting path.
``batch=None`` (default) leaves every earlier pipeline bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.carbon.forecast import make_forecaster
from repro.core.controller import EpochCapacity, RunResult
from repro.core.evaluator import CacheStats
from repro.core.service import FidelityProfile, PAPER_LAMBDA
from repro.demand import (
    DemandModel,
    LatencyMatrix,
    assign_origin_traffic,
    default_demand,
    default_latency_matrix,
    default_origins,
)
from repro.fleet.capacity import (
    CapacityManager,
    GatingPolicy,
    make_gating_policy,
)
from repro.fleet.regional import DEFAULT_MAX_UTILIZATION, RegionalService
from repro.fleet.regions import Region
from repro.fleet.routing import (
    Router,
    RoutingContext,
    make_router,
    plan_origin_cells,
)
from repro.models.perf import PerfModel
from repro.models.zoo import ModelZoo, default_zoo
from repro.serving.workload import DEFAULT_BASE_UTILIZATION
from repro.shifting import BatchCompletion, BatchJobClass, TemporalScheduler

__all__ = [
    "FleetCoordinator",
    "FleetResult",
    "DEFAULT_FLOOR_SHARE",
    "DEFAULT_DEMAND_SCALE",
    "share_evaluator_caches",
]

#: Share of a region's nominal rate that can never be shifted away —
#: geo-resident traffic (data-residency, session affinity).
DEFAULT_FLOOR_SHARE = 0.05

#: Demand-model mean global rate as a fraction of the fleet's nominal
#: sizing: provisioning with headroom over *mean* demand so the diurnal
#: peak (mean x (1 + swing)) stays within the fleet's capacity envelope.
DEFAULT_DEMAND_SCALE = 0.8


def share_evaluator_caches(services: list[RegionalService]) -> int:
    """Pool analytic evaluator caches across same-hardware regions.

    Regions with an identical model family, cluster size and device pool
    evaluate the *same* pure function — analytic evaluations depend only
    on the full cache key ``(graph, rate, awake, pool)`` — so one region's
    warm-up can serve every twin's.  This merges each such group's
    optimization-evaluator stores behind one shared dictionary (results
    are unchanged, only recomputation is saved); hit/miss counters remain
    per-evaluator, so per-region cache stats stay honest.

    DES measurement evaluators are *never* pooled: their samples come from
    per-region seeds, and sharing them would silently change
    measurements.  Returns the number of groups actually merged.
    """
    groups: dict[tuple, list] = {}
    for s in services:
        ev = getattr(s.service.scheme, "evaluator", None)
        if ev is None or ev.method != "analytic":
            continue
        # The zoo/perf identities guard the pure-function claim: two
        # evaluators only compute the same function when they price the
        # same model zoo on the same performance oracle (one coordinator
        # shares those objects across its regions; callers mixing
        # coordinators built on different testbeds must not merge).
        key = (
            id(ev.zoo), id(ev.perf),
            ev.family, ev.n_gpus, ev.jitter_cv, ev.pool_key,
        )
        groups.setdefault(key, []).append(ev)
    merged = 0
    for group in groups.values():
        if len(group) < 2:
            continue
        shared = group[0].cache_store
        for ev in group[1:]:
            ev.adopt_cache(shared)
        merged += 1
    return merged


@dataclass
class FleetResult:
    """Aggregated outcome of one fleet run: global totals + per-region runs.

    The demand-mode fields (``origin_names`` onward) are empty/None for
    constant-demand runs; :attr:`has_demand` gates everything derived from
    them.
    """

    router_name: str
    scheme_name: str
    application: str
    global_rate_per_s: float
    regions: tuple[Region, ...]
    results: tuple[RunResult, ...]
    demand_name: str | None = None
    origin_names: tuple[str, ...] = ()
    latency_matrix_ms: np.ndarray | None = None
    #: Per-epoch (origin x region) routed-rate transport plans.
    origin_plans: tuple[np.ndarray, ...] = ()
    #: The raw end-to-end p95 target shared by every region (demand mode).
    user_sla_target_ms: float | None = None
    #: Elastic-capacity mode the run used (``None``: always-on).
    gating_name: str | None = None
    #: Deferrable batch class the run carried (``None``: interactive only).
    batch_name: str | None = None
    #: Per-epoch (epoch x region) admitted batch rates (req/s).
    batch_rates: np.ndarray | None = None
    #: Per-region tuples of :class:`~repro.shifting.BatchCompletion`.
    batch_completions: tuple[tuple[BatchCompletion, ...], ...] = ()
    #: Batch requests still queued when the run ended.
    batch_pending_requests: float = 0.0
    #: Queued batch requests already past deadline at the end of the run.
    batch_overdue_requests: float = 0.0

    # ------------------------------------------------------------------ #
    # global totals
    # ------------------------------------------------------------------ #

    @property
    def duration_h(self) -> float:
        return self.results[0].duration_h

    @property
    def total_requests(self) -> float:
        return sum(r.total_requests for r in self.results)

    @property
    def total_energy_j(self) -> float:
        return sum(r.total_energy_j for r in self.results)

    @property
    def total_carbon_g(self) -> float:
        return sum(r.total_carbon_g for r in self.results)

    @property
    def carbon_g_per_request(self) -> float:
        """Total carbon over total requests (NaN for a zero-traffic run).

        Gating makes zero-request regions (and, in degenerate scenarios,
        epochs) routine; the ratio must degrade to NaN, never divide by
        zero.
        """
        total = self.total_requests
        return self.total_carbon_g / total if total > 0 else float("nan")

    @property
    def a_base(self) -> float:
        return self.results[0].a_base

    @property
    def mean_accuracy(self) -> float:
        """Request-weighted accuracy across every region's epochs.

        Regions that served nothing (fully drained while gated) carry no
        weight and no defined accuracy; they are skipped rather than
        letting their NaN poison the fleet mean.
        """
        total = self.total_requests
        if total <= 0:
            return float("nan")
        weighted = sum(
            r.mean_accuracy * r.total_requests
            for r in self.results
            if r.total_requests > 0
        )
        return weighted / total

    @property
    def accuracy_loss_pct(self) -> float:
        return (self.a_base - self.mean_accuracy) / self.a_base * 100.0

    @property
    def sla_attainment(self) -> float:
        """Fraction of requests served within the SLA *including* network.

        Each region's SLA target is already tightened by its network
        latency at assembly time, so the service-side check against
        ``sla_target_ms`` is exactly the user-observed end-to-end check a
        geographic router must protect.  (Demand-mode runs additionally
        expose :attr:`user_sla_attainment`, which re-prices the hop per
        (origin, serving-region) pair instead of using the region mean.)
        """
        met = 0.0
        for result in self.results:
            for e in result.epochs:
                if np.isfinite(e.p95_ms) and e.p95_ms <= result.sla_target_ms:
                    met += e.requests
        total = self.total_requests
        return met / total if total > 0 else 0.0

    @property
    def scheme_by_region(self) -> dict[str, str]:
        """Each region's optimization scheme (they may differ per region)."""
        return {
            region.name: result.scheme_name
            for region, result in zip(self.regions, self.results)
        }

    @property
    def request_shares(self) -> dict[str, float]:
        """Fraction of all served requests each region carried."""
        total = self.total_requests
        return {
            region.name: (result.total_requests / total if total > 0 else 0.0)
            for region, result in zip(self.regions, self.results)
        }

    # ------------------------------------------------------------------ #
    # elastic-capacity views
    # ------------------------------------------------------------------ #

    @property
    def has_gating(self) -> bool:
        return self.gating_name is not None

    def awake_gpu_series(self) -> np.ndarray:
        """(epoch x region) awake-GPU counts (full pool where ungated)."""
        out = np.zeros((len(self.results[0].epochs), len(self.regions)))
        for j, (region, result) in enumerate(zip(self.regions, self.results)):
            for i, e in enumerate(result.epochs):
                out[i, j] = (
                    e.awake_gpus if e.awake_gpus is not None else region.n_gpus
                )
        return out

    @property
    def mean_awake_fraction(self) -> float:
        """Average share of the fleet's GPUs that were awake (1.0 always-on)."""
        totals = np.array([r.n_gpus for r in self.regions], dtype=np.float64)
        awake = self.awake_gpu_series()
        return float(awake.sum() / (totals.sum() * awake.shape[0]))

    @property
    def cache_stats(self) -> CacheStats:
        """Pooled evaluator cache counters across regions and evaluators."""
        hits = misses = size = batched = 0
        for stats in self.cache_stats_by_region.values():
            hits += stats.hits
            misses += stats.misses
            size += stats.size
            batched += stats.batched
        return CacheStats(hits=hits, misses=misses, size=size, batched=batched)

    @property
    def cache_stats_by_region(self) -> dict[str, CacheStats]:
        """Each region's pooled evaluator cache counters (measure + opt)."""
        out: dict[str, CacheStats] = {}
        for region, r in zip(self.regions, self.results):
            hits = misses = size = batched = 0
            for stats in (r.measure_cache, r.opt_cache):
                if stats is not None:
                    hits += stats.hits
                    misses += stats.misses
                    size += stats.size
                    batched += stats.batched
            out[region.name] = CacheStats(
                hits=hits, misses=misses, size=size, batched=batched
            )
        return out

    # ------------------------------------------------------------------ #
    # demand-mode views
    # ------------------------------------------------------------------ #

    @property
    def has_demand(self) -> bool:
        return bool(self.origin_plans)

    def _require_demand(self) -> None:
        if not self.has_demand:
            raise ValueError(
                "this fleet ran constant demand; origin views need a demand model"
            )

    @property
    def origin_request_shares(self) -> dict[str, float]:
        """Routed-rate share of global traffic each origin generated."""
        self._require_demand()
        totals = np.sum(self.origin_plans, axis=0)  # (origins, regions)
        total = totals.sum()
        return {
            name: (float(totals[i].sum() / total) if total > 0 else 0.0)
            for i, name in enumerate(self.origin_names)
        }

    @property
    def origin_region_shares(self) -> np.ndarray:
        """(origin x region) share of all routed traffic, summed over epochs."""
        self._require_demand()
        totals = np.sum(self.origin_plans, axis=0)
        grand = totals.sum()
        return totals / grand if grand > 0 else np.zeros_like(totals)

    @property
    def mean_net_latency_ms(self) -> float:
        """Traffic-weighted network latency users actually experienced."""
        self._require_demand()
        totals = np.sum(self.origin_plans, axis=0)
        grand = float(totals.sum())
        if grand <= 0:
            return float("nan")
        return float((totals * self.latency_matrix_ms).sum() / grand)

    def _user_targets_ms(self) -> np.ndarray:
        """Per-region raw end-to-end p95 targets (tightening undone)."""
        return np.array(
            [
                result.sla_target_ms + region.net_latency_ms
                for region, result in zip(self.regions, self.results)
            ]
        )

    def _met_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """(met, total) routed rates per (origin, region), over all epochs.

        The single judging rule of the demand layer: a cell's traffic
        meets the SLA when the serving region's epoch p95 plus the
        *pair's* matrix latency fits the region's end-to-end target
        (traffic in epochs with a non-finite p95 counts only as total).
        """
        lat = self.latency_matrix_ms
        targets = self._user_targets_ms()
        met = np.zeros_like(lat)
        total = np.zeros_like(lat)
        for i, plan in enumerate(self.origin_plans):
            for j, result in enumerate(self.results):
                p95 = result.epochs[i].p95_ms
                total[:, j] += plan[:, j]
                if not np.isfinite(p95):
                    continue
                ok = p95 + lat[:, j] <= targets[j]
                met[ok, j] += plan[ok, j]
        return met, total

    @property
    def user_sla_attainment(self) -> float:
        """Attainment with the network hop priced per (origin, region) pair.

        Weighted by the transport plans' routed rates; see
        :meth:`_met_matrix` for the per-cell rule.
        """
        self._require_demand()
        met, total = self._met_matrix()
        grand = float(total.sum())
        return float(met.sum()) / grand if grand > 0 else 0.0

    # ------------------------------------------------------------------ #
    # batch-workload views
    # ------------------------------------------------------------------ #

    @property
    def has_batch(self) -> bool:
        return self.batch_name is not None

    def _require_batch(self) -> None:
        if not self.has_batch:
            raise ValueError(
                "this fleet ran no batch class; batch views need batch= "
                "(or a [batch] spec section)"
            )

    @property
    def _epoch_s(self) -> float:
        """Epoch length in seconds (every region shares it)."""
        return self.duration_h * 3600.0 / len(self.results[0].epochs)

    @property
    def batch_completed_requests(self) -> float:
        """Batch requests actually admitted and served during the run."""
        self._require_batch()
        return float(
            sum(c.requests for per in self.batch_completions for c in per)
        )

    @property
    def batch_on_time_requests(self) -> float:
        self._require_batch()
        return float(
            sum(
                c.requests
                for per in self.batch_completions
                for c in per
                if c.on_time
            )
        )

    @property
    def batch_deadline_attainment(self) -> float:
        """Fraction of due batch work that met its deadline.

        The denominator counts every request whose deadline has been
        decided: completions plus still-queued overdue work.  Requests
        queued but not yet due don't count either way; a run with no due
        work yet has no defined attainment (NaN).
        """
        self._require_batch()
        decided = self.batch_completed_requests + self.batch_overdue_requests
        return (
            self.batch_on_time_requests / decided
            if decided > 0
            else float("nan")
        )

    @property
    def batch_carbon_g_per_request(self) -> float:
        """Carbon attributed to batch traffic, per batch request.

        Batch requests ride the same epoch rates as interactive ones, so
        each epoch's carbon is attributed pro-rata by the batch share of
        the epoch's served rate — exactly the marginal pricing the
        pool-aware evaluators already applied.
        """
        self._require_batch()
        total_req = total_carbon = 0.0
        for j, result in enumerate(self.results):
            for i, e in enumerate(result.epochs):
                batch_rate = float(self.batch_rates[i, j])
                if batch_rate <= 0.0 or e.rate_per_s <= 0.0:
                    continue
                share = min(1.0, batch_rate / e.rate_per_s)
                total_carbon += e.carbon_g * share
                total_req += e.requests * share
        return total_carbon / total_req if total_req > 0 else float("nan")

    @property
    def mean_shift_h(self) -> float:
        """Request-weighted mean hours batch work waited before running."""
        self._require_batch()
        total = self.batch_completed_requests
        if total <= 0:
            return float("nan")
        moved = sum(
            c.requests * c.age_h for per in self.batch_completions for c in per
        )
        return float(moved / total)

    def shift_histogram(self, bin_h: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """How far batch work moved: ``(bin_edges_h, requests)`` arrays.

        Bin ``k`` counts the requests admitted between ``k * bin_h`` and
        ``(k + 1) * bin_h`` hours after arriving; the edges array has one
        more entry than the counts, ``numpy.histogram`` style.
        """
        self._require_batch()
        if bin_h <= 0.0:
            raise ValueError(f"histogram bin must be positive, got {bin_h}")
        ages = [c.age_h for per in self.batch_completions for c in per]
        weights = [c.requests for per in self.batch_completions for c in per]
        top = max(ages, default=0.0)
        n_bins = max(1, int(np.ceil((top + 1e-9) / bin_h)))
        edges = np.arange(n_bins + 1, dtype=np.float64) * bin_h
        counts, _ = np.histogram(ages, bins=edges, weights=weights)
        return edges, counts

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def table(self):
        headers = (
            "Region", "Share%", "Mean ci", "Carbon(g)", "AccLoss%",
            "p95+net(ms)", "SLA%", "CacheHit%", "Batch%",
        )
        by_region = self.cache_stats_by_region
        grand_total = self.total_requests
        rows = []
        for region, result in zip(self.regions, self.results):
            requests = result.total_requests
            share = requests / grand_total * 100.0 if grand_total > 0 else 0.0
            met = sum(
                e.requests
                for e in result.epochs
                if np.isfinite(e.p95_ms) and e.p95_ms <= result.sla_target_ms
            )
            rows.append(
                (
                    region.name,
                    f"{share:.1f}",
                    f"{region.trace.mean():.0f}",
                    f"{result.total_carbon_g:,.0f}",
                    f"{result.accuracy_loss_pct:.2f}" if requests > 0 else "-",
                    f"{result.p95_ms + region.net_latency_ms:.1f}",
                    f"{met / requests * 100.0:.1f}" if requests > 0 else "-",
                    f"{100 * by_region[region.name].hit_rate:.1f}",
                    f"{100 * by_region[region.name].batch_rate:.1f}",
                )
            )
        rows.append(
            (
                "fleet",
                "100.0",
                "-",
                f"{self.total_carbon_g:,.0f}",
                f"{self.accuracy_loss_pct:.2f}",
                "-",
                f"{self.sla_attainment * 100.0:.1f}",
                f"{100 * self.cache_stats.hit_rate:.1f}",
                f"{100 * self.cache_stats.batch_rate:.1f}",
            )
        )
        return headers, rows

    def origin_table(self):
        """Per-origin demand-mode summary: share, latency, user SLA."""
        self._require_demand()
        headers = ("Origin", "Demand%", "Net(ms)", "UserSLA%", "Top region")
        totals = np.sum(self.origin_plans, axis=0)
        lat = self.latency_matrix_ms
        met, cell_totals = self._met_matrix()
        grand = float(totals.sum())
        rows = []
        for i, name in enumerate(self.origin_names):
            row_total = float(totals[i].sum())
            if row_total <= 0:
                # An origin can be routed nothing over a short or fully
                # gated window; its shares and latencies are undefined.
                rows.append((name, "0.0", "-", "-", "-"))
                continue
            mean_lat = float((totals[i] * lat[i]).sum() / row_total)
            top = int(np.argmax(totals[i]))
            cell_total = float(cell_totals[i].sum())
            user_sla = (
                f"{100 * met[i].sum() / cell_total:.1f}" if cell_total > 0 else "-"
            )
            rows.append(
                (
                    name,
                    f"{100 * row_total / grand:.1f}",
                    f"{mean_lat:.1f}",
                    user_sla,
                    f"{self.regions[top].name} "
                    f"({100 * totals[i, top] / row_total:.0f}%)",
                )
            )
        return headers, rows

    def batch_table(self):
        """Per-region batch-workload summary: volume, shift, deadlines.

        Undefined metrics (a region that carried no batch work, or a run
        whose due work is empty) render as ``"-"`` so the columns stay
        deterministic-width regardless of scenario shape.
        """
        self._require_batch()
        headers = (
            "Region", "BatchReq", "BatchShare%", "MeanShift(h)", "OnTime%",
        )
        grand = self.batch_completed_requests
        rows = []
        for j, region in enumerate(self.regions):
            per = self.batch_completions[j]
            requests = float(sum(c.requests for c in per))
            if requests <= 0:
                rows.append((region.name, "0", "0.0", "-", "-"))
                continue
            on_time = float(sum(c.requests for c in per if c.on_time))
            shift = sum(c.requests * c.age_h for c in per) / requests
            rows.append(
                (
                    region.name,
                    f"{requests:,.0f}",
                    f"{requests / grand * 100.0:.1f}" if grand > 0 else "-",
                    f"{shift:.2f}",
                    f"{on_time / requests * 100.0:.1f}",
                )
            )
        attainment = self.batch_deadline_attainment
        rows.append(
            (
                "fleet",
                f"{grand:,.0f}",
                "100.0" if grand > 0 else "-",
                f"{self.mean_shift_h:.2f}" if grand > 0 else "-",
                f"{attainment * 100.0:.1f}" if np.isfinite(attainment) else "-",
            )
        )
        return headers, rows


class FleetCoordinator:
    """Runs N regional services under one router and one global workload."""

    def __init__(
        self,
        services: list[RegionalService],
        router: Router,
        floor_share: float = DEFAULT_FLOOR_SHARE,
        demand: DemandModel | None = None,
        latency_matrix: LatencyMatrix | None = None,
        ramp_share_per_h: float | None = None,
        drain_share_per_h: float | None = None,
        forecaster: str = "diurnal",
        gating: GatingPolicy | str | None = None,
        batch: BatchJobClass | None = None,
    ) -> None:
        if not services:
            raise ValueError("a fleet needs at least one region")
        # A strictly positive floor keeps every routed rate positive (a
        # zero-rate region has no defined service measurement).
        if not 0.0 < floor_share < 1.0:
            raise ValueError(f"floor share must be in (0, 1), got {floor_share}")
        for label, value in (("ramp", ramp_share_per_h), ("drain", drain_share_per_h)):
            if value is not None and value <= 0.0:
                raise ValueError(
                    f"{label} share per hour must be positive, got {value}"
                )
        families = {s.controller.scheme.family for s in services}
        if len(families) != 1:
            raise ValueError(
                f"all regions must serve one model family, got {sorted(families)}"
            )
        steps = {s.controller.step_s for s in services}
        if len(steps) != 1:
            raise ValueError("all regions must share the epoch length")
        names = [s.region.name for s in services]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")
        # Schemes may differ per region (e.g. co2opt where the grid is
        # clean, clover where it is dirty); the fleet label joins the
        # distinct ones in fleet order, staying the plain scheme name for
        # uniform fleets so their reports are unchanged.
        scheme_names = [s.controller.scheme.name for s in services]
        distinct_schemes = list(dict.fromkeys(scheme_names))
        self.scheme_label = (
            distinct_schemes[0]
            if len(distinct_schemes) == 1
            else "+".join(distinct_schemes)
        )
        if (demand is None) != (latency_matrix is None):
            raise ValueError(
                "demand model and latency matrix come together: both or neither"
            )
        if demand is not None:
            if latency_matrix.origin_names != demand.origin_names:
                raise ValueError(
                    f"latency matrix origins {latency_matrix.origin_names} != "
                    f"demand origins {demand.origin_names}"
                )
            if latency_matrix.region_names != tuple(names):
                raise ValueError(
                    f"latency matrix regions {latency_matrix.region_names} != "
                    f"fleet regions {tuple(names)}"
                )
        self.services = list(services)
        self.router = router
        self.floor_share = floor_share
        self.demand = demand
        self.latency_matrix = latency_matrix
        self.ramp_share_per_h = ramp_share_per_h
        self.drain_share_per_h = drain_share_per_h
        self.forecaster_name = forecaster
        self.step_s = self.services[0].controller.step_s
        # Ramp limits are configured per *hour* (a property of traffic
        # migration, not of the control cadence) and converted to the
        # per-epoch bounds the routing context speaks.
        step_h = self.step_s / 3600.0
        self.max_ramp_share = (
            1.0 if ramp_share_per_h is None
            else min(1.0, ramp_share_per_h * step_h)
        )
        self.max_drain_share = (
            None if drain_share_per_h is None
            else min(1.0, drain_share_per_h * step_h)
        )
        # Cell planner form of the drain limit: the fraction of a cell's
        # resident sessions that must stay put from one epoch to the next.
        self._session_keep = (
            0.0 if drain_share_per_h is None
            else max(0.0, 1.0 - drain_share_per_h * step_h)
        )
        # Whether any region runs non-default silicon.  Homogeneous
        # (implicit all-A100) fleets skip the per-epoch efficiency signal
        # entirely: the routing context carries no energy term and every
        # ranking stays bit-for-bit the pre-heterogeneity ordering.
        self._heterogeneous = any(
            s.device_pool is not None for s in self.services
        )
        self._nominal = np.array(
            [s.nominal_rate_per_s for s in self.services], dtype=np.float64
        )
        self._capacity = np.array(
            [s.capacity_rate_per_s for s in self.services], dtype=np.float64
        )
        self._pue = np.array([s.region.pue for s in self.services])
        self._latency = np.array(
            [s.region.net_latency_ms for s in self.services]
        )
        self.global_rate_per_s = (
            float(self._nominal.sum())
            if demand is None
            else demand.mean_total_rate_per_s
        )
        # Per-region forecasters, provisioned lazily only for routers that
        # declare they consult forecasts (everything else skips the cost).
        self._forecasters = None
        if getattr(self.router, "needs_forecast", False):
            self._forecasters = [
                make_forecaster(forecaster, s.region.trace)
                for s in self.services
            ]
        # Elastic capacity: one awake/asleep state machine per region.
        # ``None`` keeps the always-on fleet — the bit-for-bit seed path.
        if isinstance(gating, str):
            gating = make_gating_policy(gating)
        self.gating = gating
        self.gating_name = (
            None if gating is None
            else ("forecast" if gating.prewake else "reactive")
        )
        self._managers = None
        if gating is not None:
            # The fleet's accounting advertises (and property-tests) that a
            # gated epoch never out-spends its always-on twin.  That holds
            # iff a wake transition draws no more than the awake static
            # floor it was gated from — enforce the bound against each
            # region's power model rather than let a custom policy
            # silently break the invariant.  A scalar policy override is
            # checked against every device it applies to (the leanest sets
            # the ceiling); per-device profile defaults are each checked
            # against their own board's static draw.
            for s in services:
                if gating.wake_energy_j is not None:
                    ceiling = (
                        s.min_static_watts_per_gpu() * gating.wake_latency_s
                    )
                    if gating.wake_energy_j > ceiling * (1.0 + 1e-9):
                        raise ValueError(
                            f"wake energy {gating.wake_energy_j:g} J exceeds "
                            f"the static draw over the wake window "
                            f"({ceiling:g} J for region {s.region.name!r}); a "
                            "gated epoch would out-spend its always-on twin — "
                            "raise wake_latency_s or lower wake_energy_j"
                        )
                    continue
                for name, energy, watts in zip(
                    s.region.device_names,
                    s.device_wake_energies_j(),
                    s.device_static_watts(),
                ):
                    ceiling = watts * gating.wake_latency_s
                    if energy > ceiling * (1.0 + 1e-9):
                        raise ValueError(
                            f"device {name!r} wake energy {energy:g} J "
                            f"exceeds its static draw over the wake window "
                            f"({ceiling:g} J, region {s.region.name!r}); a "
                            "gated epoch would out-spend its always-on twin "
                            "— raise wake_latency_s or override wake_energy_j"
                        )
            self._managers = [
                CapacityManager(
                    n_gpus=s.region.n_gpus,
                    capacity_rate_per_s=s.capacity_rate_per_s,
                    policy=gating,
                    per_gpu_rates=s.device_capacity_rates,
                )
                for s in self.services
            ]
        # Temporal load shifting: a deferrable batch class turns the
        # epoch into gate→route→admit-batch→wake→step.  The scheduler
        # gets its own forecaster bank (any router may pair with it, so
        # it cannot borrow the router's) over the same regional traces.
        self.batch = batch
        self._batch_scheduler = None
        self._batch_forecasters = None
        if batch is not None:
            self._batch_scheduler = TemporalScheduler(
                batch, self.step_s, tuple(names)
            )
            self._batch_forecasters = [
                make_forecaster(forecaster, s.region.trace)
                for s in self.services
            ]

    @classmethod
    def create(
        cls,
        regions: tuple[Region, ...] | list[Region],
        application: str = "classification",
        scheme: str | tuple[str, ...] | list[str] = "clover",
        router: Router | str = "carbon-greedy",
        lambda_weight: float = PAPER_LAMBDA,
        fidelity: FidelityProfile | str = "default",
        seed: int = 0,
        utilization: float = DEFAULT_BASE_UTILIZATION,
        max_utilization: float = DEFAULT_MAX_UTILIZATION,
        floor_share: float = DEFAULT_FLOOR_SHARE,
        zoo: ModelZoo | None = None,
        perf: PerfModel | None = None,
        demand: DemandModel | str | None = None,
        origins=None,
        latency_matrix: LatencyMatrix | None = None,
        demand_scale: float = DEFAULT_DEMAND_SCALE,
        ramp_share_per_h: float | None = None,
        drain_share_per_h: float | None = None,
        lookahead_h: float | None = None,
        forecaster: str = "diurnal",
        gating: GatingPolicy | str | None = None,
        batch: BatchJobClass | None = None,
        share_caches: bool = False,
    ) -> "FleetCoordinator":
        """Assemble one regional service per region plus the router.

        Region ``i`` gets root seed ``seed + i``, so region 0 of an N=1
        fleet reproduces the standalone service at the same seed exactly.

        ``scheme`` is one name for a uniform fleet or a per-region tuple
        aligned with ``regions`` (e.g. ``("co2opt", "clover")`` — run the
        accuracy-indifferent optimizer where the grid is clean and the
        balanced one where it is dirty).  ``share_caches=True`` pools the
        analytic evaluator caches of regions with identical hardware
        (:func:`share_evaluator_caches`) — results are unchanged, fleet
        warm-up cost drops.

        ``demand`` may be a built :class:`~repro.demand.DemandModel`
        (which carries its own origins and mean rate — ``origins`` and
        ``demand_scale`` then do not apply), a kind name (``"constant"`` /
        ``"diurnal"`` — the model is built over ``origins`` with mean
        global rate ``demand_scale`` x the fleet's nominal sizing), or
        ``None`` for the constant PR-1 workload.  With
        a demand model, each region's SLA baseline is tightened by its
        nearest-origin hop from the origin→region matrix (built from
        zones unless given) instead of the region's scalar registry
        latency; farther origins' extra hop is charged per (origin,
        region) pair by the cell planner.  ``lookahead_h`` overrides a
        forecast-aware
        router's horizon; ``ramp_share_per_h`` / ``drain_share_per_h``
        bound how fast a region's share may grow / shrink per hour
        (``None`` = unconstrained, the PR-1 semantics).  ``gating`` turns
        on elastic GPU capacity: a :class:`~repro.fleet.GatingPolicy`, or
        a mode name (``"reactive"`` wakes on observed shortfall,
        ``"forecast"`` additionally pre-wakes from the router's lookahead
        hints); ``None`` keeps every GPU always on.  ``batch`` adds a
        deferrable :class:`~repro.shifting.BatchJobClass` the temporal
        scheduler shifts into forecast-clean epochs (``None`` keeps the
        interactive-only pipeline bit-for-bit).
        """
        if isinstance(fidelity, str):
            fidelity = FidelityProfile.by_name(fidelity)
        zoo = zoo or default_zoo()
        perf = perf or PerfModel()
        if isinstance(scheme, str):
            schemes: tuple[str, ...] = (scheme,) * len(regions)
        else:
            schemes = tuple(scheme)
            if len(schemes) != len(regions):
                raise ValueError(
                    f"{len(schemes)} schemes for {len(regions)} regions"
                )
        if isinstance(router, str):
            router = make_router(router)
        if lookahead_h is not None:
            if not hasattr(router, "lookahead_h"):
                raise ValueError(
                    f"router {router.name!r} takes no lookahead horizon"
                )
            # Copy instead of mutating the caller's instance; the dataclass
            # constructor re-runs __post_init__, so an invalid horizon
            # raises here rather than silently misconfiguring the run.
            router = replace(router, lookahead_h=lookahead_h)

        demand_model = None
        if demand is not None:
            if isinstance(demand, DemandModel):
                if origins is not None:
                    raise ValueError(
                        "a built demand model carries its own origins; "
                        "pass origins only with a demand kind name"
                    )
                demand_model = demand
                model_origins = demand.origins
            else:
                model_origins = tuple(origins) if origins else default_origins()
            if latency_matrix is None:
                latency_matrix = default_latency_matrix(model_origins, regions)
            # At assembly the SLA baseline is tightened by the region's
            # *nearest-origin* hop — the resident users the datacenter is
            # provisioned for.  The extra hop of every farther origin is
            # charged at routing time, per (origin, region) cell, by
            # plan_origin_cells' budget bisections, and again when
            # attainment is judged (user_sla_attainment).
            effective = latency_matrix.nearest_origin_latency()
            regions = tuple(
                replace(region, net_latency_ms=float(lat))
                for region, lat in zip(regions, effective)
            )

        services = [
            RegionalService.create(
                region=region,
                application=application,
                scheme=schemes[i],
                lambda_weight=lambda_weight,
                fidelity=fidelity,
                seed=seed + i,
                utilization=utilization,
                max_utilization=max_utilization,
                zoo=zoo,
                perf=perf,
            )
            for i, region in enumerate(regions)
        ]
        if share_caches:
            share_evaluator_caches(services)

        if demand is not None and demand_model is None:
            if not 0.0 < demand_scale <= 1.0:
                raise ValueError(
                    f"demand scale must be in (0, 1], got {demand_scale}"
                )
            # At demand_scale=1.0 the mean is *exactly* the nominal global
            # rate (1.0 * x == x in IEEE): the bit-for-bit anchor.
            mean_rate = demand_scale * float(
                sum(s.nominal_rate_per_s for s in services)
            )
            demand_model = default_demand(
                mean_rate, kind=demand, origins=model_origins
            )
        return cls(
            services,
            router,
            floor_share=floor_share,
            demand=demand_model,
            latency_matrix=latency_matrix,
            ramp_share_per_h=ramp_share_per_h,
            drain_share_per_h=drain_share_per_h,
            forecaster=forecaster,
            gating=gating,
            batch=batch,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _context(
        self,
        t_h: float,
        global_rate: float,
        prev_shares: np.ndarray | None,
    ) -> RoutingContext:
        ci = np.array([s.observe_ci(t_h) for s in self.services])
        if self.router.needs_sla_caps and self.demand is None:
            sla_caps = np.array([s.sla_safe_rate() for s in self.services])
        else:
            # Policies that never consult the SLA caps skip the bisection
            # probes, so the static path stays a pure pass-through.  Demand
            # fleets skip them too: the cell planner prices SLA per
            # (origin, region) budget instead of per region.
            sla_caps = self._capacity.copy()
        forecast = None
        lookahead = 0.0
        if self._forecasters is not None:
            lookahead = float(getattr(self.router, "lookahead_h", 0.0))
            forecast = self._window_forecast(t_h, lookahead)
        forecast_rate = None
        if self.gating is not None and self.gating.prewake:
            # Pre-wake hints project one epoch ahead — the wake lead time.
            # The demand model doubles as a short-horizon demand forecast
            # (it is deterministic); constant fleets predict persistence.
            forecast_rate = (
                global_rate
                if self.demand is None
                else float(self.demand.total_rate(t_h + self.step_s / 3600.0))
            )
        return RoutingContext(
            t_h=t_h,
            global_rate_per_s=global_rate,
            ci=ci,
            pue=self._pue,
            net_latency_ms=self._latency,
            nominal_rates=self._nominal,
            capacity_rates=self._capacity,
            sla_cap_rates=sla_caps,
            floor_rates=self.floor_share * self._nominal,
            forecast_ci=forecast,
            lookahead_h=lookahead,
            prev_shares=prev_shares,
            max_ramp_share=self.max_ramp_share,
            max_drain_share=self.max_drain_share,
            forecast_global_rate_per_s=forecast_rate,
            # The per-region efficiency signal: joules/request of each
            # region's deployed configuration on its own silicon — dynamic
            # only while the fleet is always-on (static is sunk), plus the
            # marginal device's amortized static draw once gating makes
            # idle power follow traffic.  Only computed when something
            # will read it: the fleet is heterogeneous AND the router
            # ranks efficiency-weighted.  Homogeneous fleets (and the
            # intensity-only ablation, and the static/latency policies)
            # carry no energy term, so their rankings stay exactly the
            # (bit-for-bit) pre-heterogeneity orderings.
            energy_per_request_j=(
                np.array(
                    [
                        s.marginal_energy_per_request_j(
                            static_amortize_utilization=(
                                None
                                if self.gating is None
                                else self.gating.target_utilization
                            )
                        )
                        for s in self.services
                    ]
                )
                if self._heterogeneous
                and getattr(self.router, "efficiency_weighted", False)
                else None
            ),
        )

    #: Quadrature points for the window-mean forecast per epoch.
    _FORECAST_SAMPLES = 8

    #: Headroom (ms) the cell planner subtracts from every end-to-end
    #: budget, covering the analytic-vs-DES p95 estimator mismatch.
    SLA_PLANNING_MARGIN_MS = 4.0

    def _window_forecast(self, t_h: float, lookahead_h: float) -> np.ndarray:
        """Predicted mean grid intensity over ``(t_h, t_h + lookahead_h]``.

        Ramp-limited traffic placed now is committed for hours, so the
        quantity a proactive router should rank on is the mean intensity
        of the coming window, approximated by averaging point forecasts at
        a few offsets.  A zero lookahead degenerates to the current
        prediction (persistence of the observation).
        """
        if lookahead_h <= 0.0:
            return np.array([f.predict(t_h, 0.0) for f in self._forecasters])
        offsets = np.linspace(
            lookahead_h / self._FORECAST_SAMPLES, lookahead_h,
            self._FORECAST_SAMPLES,
        )
        return np.array(
            [float(np.mean(f.predict_many(t_h, offsets)))
             for f in self._forecasters]
        )

    def _sla_rate_fn(self, user_targets_ms: np.ndarray | None = None):
        """Per-epoch memoized (region, budget) → SLA-safe-rate bisections.

        Every budget the cell planner can ask region ``r`` for is of the
        form ``user_targets_ms[r] - latency[o, r]`` (the running regional
        budget is a min over placed pair budgets, and a min of set members
        is a member), so when the targets are known the whole table is
        priced in one :meth:`RegionalService.sla_safe_rates` lockstep
        bisection per region, on first touch.  Unexpected budgets — or a
        caller without targets — fall back to the scalar bisection.
        """
        cache: dict[tuple[int, float], float] = {}
        tabled: set[int] = set()
        latency = None
        if user_targets_ms is not None:
            latency = self.latency_matrix.latency_ms

        def fn(r: int, budget_ms: float) -> float:
            key = (r, round(budget_ms, 6))
            if key not in cache and latency is not None and r not in tabled:
                tabled.add(r)
                budgets = np.unique(user_targets_ms[r] - latency[:, r])
                budgets = budgets[budgets > 0.0]
                if budgets.size:
                    rates = self.services[r].sla_safe_rates(budgets)
                    for b, rate in zip(budgets, rates):
                        cache.setdefault((r, round(float(b), 6)), float(rate))
            if key not in cache:
                cache[key] = self.services[r].sla_safe_rate(budget_ms=budget_ms)
            return cache[key]

        return fn

    def _settle_capacity(
        self,
        ctx: RoutingContext,
        rates: np.ndarray,
        batch_holds: np.ndarray | None = None,
    ) -> list[EpochCapacity]:
        """Wake phase of the gate→route→admit-batch→wake pipeline.

        Reconciles each region's routed rate with its awake pool (waking
        reactively on shortfall, filing pre-wakes from the router's
        capacity hints) and prices the epoch's elastic-capacity energy:
        sleeping GPUs at the power model's sleep-state watts, wake
        transitions at the policy's transition energy.  ``batch_holds``
        are the temporal scheduler's keep-awake rates — interactive
        traffic plus the batch volume a region is serving now plus what
        the plan sends it next epoch — folded into the settle hint so
        hysteresis never sleeps GPUs through a clean valley the
        scheduler is about to fill.
        """
        hints = None
        if self.gating.prewake:
            hints = self.router.capacity_hint(ctx)
        capacities = []
        for r, (svc, mgr) in enumerate(zip(self.services, self._managers)):
            hint = float(hints[r]) if hints is not None else None
            if batch_holds is not None and batch_holds[r] > 0.0:
                held = float(batch_holds[r])
                hint = held if hint is None else max(hint, held)
            decision = mgr.settle(float(rates[r]), hint_rate_per_s=hint)
            svc.set_awake(decision.awake)
            # Sleeping devices are priced individually: heterogeneous
            # pools gate their canonical tail, and each gated device owes
            # its own sleep-state watts (homogeneous fleets reduce to the
            # original sleep_watts x sleeping product, bit for bit).  Wake
            # transitions charge each woken device its own profile's wake
            # energy unless the policy overrides with a fleet-wide scalar;
            # wakes always extend the awake canonical prefix, so the
            # devices woken this epoch are the positions
            # [awake - woken, awake).
            aux_energy = (
                svc.sleeping_draw_watts(decision.awake) * self.step_s
                + svc.wake_transition_energy_j(
                    decision.awake - decision.woken,
                    decision.awake,
                    override_j=self.gating.wake_energy_j,
                )
            )
            capacities.append(
                EpochCapacity(
                    awake_gpus=decision.awake,
                    serving_gpus_at_start=decision.serving_at_start,
                    wake_delay_s=decision.wake_delay_s,
                    aux_energy_j=aux_energy,
                )
            )
        return capacities

    def _admit_batch(
        self,
        i: int,
        t_h: float,
        ctx: RoutingContext,
        rates: np.ndarray,
        results: list[RunResult],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Admit-batch phase: release deferrable work into this epoch.

        Computes each region's *leftover* serving rate — awake, SLA-safe
        capacity minus the interactive routed rate — plus the temporal
        slot ranking (predicted effective gCO2/request of every future
        epoch still inside a lot's deadline) and lets the scheduler plan.
        Returns ``(batch_rates, hold_rates)``: what each region serves
        now, and the near-future total rate the settle hints hold
        capacity for.
        """
        sched = self._batch_scheduler
        sched.observe_arrivals(t_h)
        # Leftover capacity prices batch admission against the same two
        # ceilings interactive routing respects: the awake pool and the
        # deployed config's SLA-safe rate (with the planning margin), so
        # admission can never push interactive traffic over its SLA.
        awake_caps = (
            np.array([m.awake_rate_per_s() for m in self._managers])
            if self._managers is not None
            else self._capacity
        )
        sla_caps = np.array(
            [
                s.sla_safe_rate(
                    budget_ms=s.sla_target_ms - self.SLA_PLANNING_MARGIN_MS
                )
                for s in self.services
            ]
        )
        leftover = np.maximum(0.0, np.minimum(awake_caps, sla_caps) - rates)
        # Accuracy floor: regions whose deployed config last measured
        # below the batch class's floor only get deadline-forced work.
        eligible = np.ones(len(self.services), dtype=bool)
        floor_pct = self.batch.accuracy_floor_pct
        if floor_pct is not None and i > 0:
            for r, result in enumerate(results):
                floor = floor_pct / 100.0 * result.a_base
                eligible[r] = results[r].epochs[-1].accuracy >= floor - 1e-12
        # Spatial ranking: the same effective-carbon score routing uses,
        # with the marginal-energy term on heterogeneous fleets.  It is
        # recomputed here (not read off ctx) because the energy term is
        # only placed in the context for efficiency-weighted routers.
        energy = None
        if self._heterogeneous:
            energy = np.array(
                [
                    s.marginal_energy_per_request_j(
                        static_amortize_utilization=(
                            None
                            if self.gating is None
                            else self.gating.target_utilization
                        )
                    )
                    for s in self.services
                ]
            )
        scores = ctx.ci * self._pue
        if energy is not None:
            scores = scores * energy
        # Temporal ranking: every slot — including slot 0 — is scored
        # from the same forecaster bank at its mid-slot offset, so the
        # "wait or run now" comparison carries no actual-vs-forecast
        # asymmetry (at horizon ~0 the forecasters return the current
        # observation anyway).  The fleet-min is the score: the planner
        # asks "how clean could a request be served then", and spatial
        # placement independently picks the cleanest open region.
        n_slots = sched.horizon_slots
        step_h = self.step_s / 3600.0
        offsets = (np.arange(n_slots) + 0.5) * step_h
        forecast = np.array(
            [f.predict_many(t_h, offsets) for f in self._batch_forecasters]
        )
        effective = forecast * self._pue[:, None]
        if energy is not None:
            effective = effective * energy[:, None]
        slot_scores = effective.min(axis=0)
        slot_caps = np.empty(n_slots, dtype=np.float64)
        slot_caps[0] = float((leftover * eligible).sum()) * self.step_s
        if n_slots > 1:
            offsets = offsets[1:]
            total_cap = float(self._capacity.sum())
            interactive = float(rates.sum())
            if self.demand is None:
                future_rates = np.full(offsets.size, interactive)
            else:
                future_rates = np.array(
                    [self.demand.total_rate(t_h + off) for off in offsets]
                )
            estimated = np.maximum(0.0, total_cap - future_rates) * self.step_s
            # The physical envelope overstates what admission will see
            # (SLA caps, gated pools); scale future estimates by the
            # haircut slot 0 actually took.
            estimated0 = max(0.0, total_cap - interactive) * self.step_s
            calibration = (
                min(1.0, slot_caps[0] / estimated0) if estimated0 > 0 else 0.0
            )
            slot_caps[1:] = estimated * calibration
        return sched.plan_epoch(
            i,
            t_h,
            region_scores=scores,
            region_leftover_rates=leftover,
            region_eligible=eligible,
            slot_scores=slot_scores,
            slot_caps=slot_caps,
        )

    def run(
        self,
        duration_h: float | None = None,
        parallel_regions: int | None = None,
    ) -> FleetResult:
        """Route and serve the global workload for ``duration_h`` hours.

        With gating enabled every epoch runs the gate→route→wake
        pipeline: scheduled capacity transitions land first (the routing
        envelope sees the gated pool), the router splits the global rate
        against *physical* capacity, and each region then reconciles its
        routed rate with its awake GPUs — waking reactively (and paying
        the wake-latency window) or banking pre-wakes for the next epoch.

        ``parallel_regions`` > 1 steps the regions of each epoch through
        a thread pool of that many workers.  The per-region ``step()``
        calls are independent given the routed rates (each region owns
        its controller, RNG streams and DES evaluator; pooled analytic
        caches hold pure functions, so a concurrent duplicate compute can
        only insert the identical value), which makes the parallel
        drive's *simulation results* — every rate, p95, energy and carbon
        number — bit-for-bit identical to the serial one; only the
        epoch's wall-clock changes.  The one non-physical exception:
        with caches pooled across regions (``share_caches``), *which*
        racing region gets counted the miss for a shared entry is
        timing-dependent, so per-region hit/miss diagnostics may
        attribute warm-up work differently between parallel runs.
        ``None``/``1`` keeps the serial driver (fully deterministic,
        counters included).

        Runs are deterministic given the construction seed.  A minimal
        single-region fleet at smoke fidelity (hourly epochs):

        >>> from repro.fleet import FleetCoordinator, region_by_name
        >>> fleet = FleetCoordinator.create(
        ...     [region_by_name("us-ciso", n_gpus=2)], router="static",
        ...     scheme="base", fidelity="smoke", seed=0)
        >>> result = fleet.run(duration_h=2.0)
        >>> len(result.results[0].epochs)
        2
        >>> result.total_requests > 0 and result.total_carbon_g > 0
        True
        >>> result.request_shares  # one region carries everything
        {'us-ciso': 1.0}
        """
        if duration_h is None:
            duration_h = min(s.region.trace.span_h for s in self.services)
        if parallel_regions is not None and parallel_regions < 1:
            raise ValueError(
                f"parallel region workers must be >= 1, got {parallel_regions}"
            )
        executor = None
        if (
            parallel_regions is not None
            and parallel_regions > 1
            and len(self.services) > 1
        ):
            from concurrent.futures import ThreadPoolExecutor

            executor = ThreadPoolExecutor(
                max_workers=min(parallel_regions, len(self.services)),
                thread_name_prefix="region-step",
            )
        try:
            return self._run(duration_h, executor)
        finally:
            if executor is not None:
                executor.shutdown()

    def _run(self, duration_h: float, executor) -> FleetResult:
        n_epochs = self.services[0].controller.n_epochs(duration_h)
        # Routers and capacity managers carry cross-epoch state (pending
        # forecasts, regret statistics, awake counts, scheduled sleeps); a
        # fresh run must not inherit a previous run's.
        self.router.reset()
        if self._managers is not None:
            for mgr in self._managers:
                mgr.reset()
        if self._batch_scheduler is not None:
            self._batch_scheduler.reset()
        results = [s.begin_run() for s in self.services]
        # Under ramp limits the fleet starts from the static geo-DNS
        # position (capacity-proportional) and must *walk* anywhere else —
        # epoch zero is not a free teleport.  Unconstrained fleets keep the
        # PR-1 semantics: the first split is wherever the router wants.
        ramped = self.max_ramp_share < 1.0 or (
            self.max_drain_share is not None and self.max_drain_share < 1.0
        )
        prev_shares = self._nominal / self._nominal.sum() if ramped else None
        prev_plan: np.ndarray | None = None
        plans: list[np.ndarray] = []
        batch_rows: list[np.ndarray] = []
        # The planner budgets against slightly *tightened* targets: its SLA
        # caps come from analytic bisections, while attainment is judged on
        # DES measurements — the margin absorbs that estimator mismatch so
        # far-origin traffic is not parked exactly on the budget edge.
        user_targets = np.array(
            [s.user_sla_target_ms for s in self.services]
        ) - self.SLA_PLANNING_MARGIN_MS
        for i in range(n_epochs):
            t_h = i * self.step_s / 3600.0
            if self._managers is not None:
                # Gate phase: pre-wakes and hysteresis sleeps scheduled
                # last epoch land now, before the routing envelope is
                # computed — SLA caps must see the pool that will serve.
                for svc, mgr in zip(self.services, self._managers):
                    svc.set_awake(mgr.begin_epoch())
            if self.demand is not None:
                origin_rates = self.demand.rates(t_h)
                global_rate = float(origin_rates.sum())
            else:
                origin_rates = None
                global_rate = self.global_rate_per_s
            ctx = self._context(t_h, global_rate, prev_shares)
            if origin_rates is None:
                rates = self.router.split(ctx) * global_rate
            else:
                order = self.router.region_order(ctx)
                if order is None:
                    # Pair-blind policies (the static geo-DNS baseline):
                    # regional split first, min-latency transport after.
                    rates = self.router.split(ctx) * global_rate
                    plan = assign_origin_traffic(
                        origin_rates, rates, self.latency_matrix.latency_ms
                    )
                else:
                    measured = (
                        np.array([res.epochs[-1].p95_ms for res in results])
                        if i > 0
                        else None
                    )
                    plan = plan_origin_cells(
                        ctx,
                        order,
                        origin_rates,
                        self.latency_matrix.latency_ms,
                        user_targets,
                        self._sla_rate_fn(user_targets),
                        measured_p95_ms=measured,
                        prev_plan=prev_plan,
                        session_keep_frac=self._session_keep,
                        resident_floor_share=self.floor_share,
                    )
                    rates = plan.sum(axis=0)
                    prev_plan = plan
                plans.append(plan)
            prev_shares = rates / global_rate
            # Admit-batch phase: interactive routing is settled, so the
            # leftover envelope is known; the temporal scheduler decides
            # what queued batch work runs *this* epoch.  ``rates`` stays
            # the interactive-only array (ramp shares and transport
            # plans never see batch), the step rates carry both.
            step_rates = rates
            batch_holds = None
            if self._batch_scheduler is not None:
                batch_rates, sched_holds = self._admit_batch(
                    i, t_h, ctx, rates, results
                )
                batch_rows.append(batch_rates)
                step_rates = rates + batch_rates
                # The hold hint is the total near-future rate: persisted
                # interactive traffic plus admitted batch plus the next
                # slot's planned volume.
                batch_holds = rates + sched_holds
            capacities = (
                self._settle_capacity(ctx, step_rates, batch_holds=batch_holds)
                if self._managers is not None
                else [None] * len(self.services)
            )
            if executor is None:
                for service, result, rate, cap in zip(
                    self.services, results, step_rates, capacities
                ):
                    service.step(result, i, t_h, float(rate), capacity=cap)
            else:
                futures = [
                    executor.submit(
                        service.step, result, i, t_h, float(rate), capacity=cap
                    )
                    for service, result, rate, cap in zip(
                        self.services, results, step_rates, capacities
                    )
                ]
                for future in futures:
                    future.result()
        for service, result in zip(self.services, results):
            service.finalize(result)
        demand_fields = {}
        if self.demand is not None:
            demand_fields = dict(
                demand_name=type(self.demand).__name__,
                origin_names=self.demand.origin_names,
                latency_matrix_ms=self.latency_matrix.latency_ms,
                origin_plans=tuple(plans),
                user_sla_target_ms=self.services[0].user_sla_target_ms,
            )
        batch_fields = {}
        if self._batch_scheduler is not None:
            sched = self._batch_scheduler
            end_t_h = n_epochs * self.step_s / 3600.0
            batch_fields = dict(
                batch_name=self.batch.name,
                batch_rates=np.array(batch_rows),
                batch_completions=tuple(
                    tuple(ledger.completions) for ledger in sched.ledgers
                ),
                batch_pending_requests=sched.backlog.pending_requests,
                batch_overdue_requests=sched.backlog.overdue_requests(end_t_h),
            )
        return FleetResult(
            router_name=self.router.name,
            scheme_name=self.scheme_label,
            application=self.services[0].controller.application,
            global_rate_per_s=self.global_rate_per_s,
            regions=tuple(s.region for s in self.services),
            results=tuple(results),
            gating_name=self.gating_name,
            **demand_fields,
            **batch_fields,
        )
