"""FleetCoordinator: N regional control loops under one routed workload.

The coordinator owns the global Poisson workload (the sum of the regions'
nominal sizings) and advances all regions in lock-step epochs.  Each epoch
it reads every region's grid intensity, builds a :class:`RoutingContext`
(capacity caps, SLA caps, un-shiftable floors) and lets the
:class:`~repro.fleet.routing.Router` split the global rate; each region
then runs exactly the seed controller epoch at its assigned rate —
monitor, re-optimize on the 5% trigger, serve, account.

With one region and the static router the coordinator is a transparent
wrapper: the single region receives precisely its nominal rate every epoch
and the resulting :class:`~repro.core.controller.RunResult` is bit-for-bit
the seed :meth:`CarbonAwareInferenceService.run` output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controller import RunResult
from repro.core.evaluator import CacheStats
from repro.core.service import FidelityProfile, PAPER_LAMBDA
from repro.fleet.regional import DEFAULT_MAX_UTILIZATION, RegionalService
from repro.fleet.regions import Region
from repro.fleet.routing import Router, RoutingContext, make_router
from repro.models.perf import PerfModel
from repro.models.zoo import ModelZoo, default_zoo
from repro.serving.workload import DEFAULT_BASE_UTILIZATION

__all__ = ["FleetCoordinator", "FleetResult", "DEFAULT_FLOOR_SHARE"]

#: Share of a region's nominal rate that can never be shifted away —
#: geo-resident traffic (data-residency, session affinity).
DEFAULT_FLOOR_SHARE = 0.05


@dataclass
class FleetResult:
    """Aggregated outcome of one fleet run: global totals + per-region runs."""

    router_name: str
    scheme_name: str
    application: str
    global_rate_per_s: float
    regions: tuple[Region, ...]
    results: tuple[RunResult, ...]

    # ------------------------------------------------------------------ #
    # global totals
    # ------------------------------------------------------------------ #

    @property
    def duration_h(self) -> float:
        return self.results[0].duration_h

    @property
    def total_requests(self) -> float:
        return sum(r.total_requests for r in self.results)

    @property
    def total_energy_j(self) -> float:
        return sum(r.total_energy_j for r in self.results)

    @property
    def total_carbon_g(self) -> float:
        return sum(r.total_carbon_g for r in self.results)

    @property
    def carbon_g_per_request(self) -> float:
        return self.total_carbon_g / self.total_requests

    @property
    def a_base(self) -> float:
        return self.results[0].a_base

    @property
    def mean_accuracy(self) -> float:
        """Request-weighted accuracy across every region's epochs."""
        weighted = sum(r.mean_accuracy * r.total_requests for r in self.results)
        return weighted / self.total_requests

    @property
    def accuracy_loss_pct(self) -> float:
        return (self.a_base - self.mean_accuracy) / self.a_base * 100.0

    @property
    def sla_attainment(self) -> float:
        """Fraction of requests served within the SLA *including* network.

        Each region's SLA target is already tightened by its network
        latency at assembly time, so the service-side check against
        ``sla_target_ms`` is exactly the user-observed end-to-end check a
        geographic router must protect.
        """
        met = 0.0
        for result in self.results:
            for e in result.epochs:
                if np.isfinite(e.p95_ms) and e.p95_ms <= result.sla_target_ms:
                    met += e.requests
        total = self.total_requests
        return met / total if total > 0 else 0.0

    @property
    def request_shares(self) -> dict[str, float]:
        """Fraction of all served requests each region carried."""
        total = self.total_requests
        return {
            region.name: result.total_requests / total
            for region, result in zip(self.regions, self.results)
        }

    @property
    def cache_stats(self) -> CacheStats:
        """Pooled evaluator cache counters across regions and evaluators."""
        hits = misses = size = 0
        for r in self.results:
            for stats in (r.measure_cache, r.opt_cache):
                if stats is not None:
                    hits += stats.hits
                    misses += stats.misses
                    size += stats.size
        return CacheStats(hits=hits, misses=misses, size=size)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def table(self):
        headers = (
            "Region", "Share%", "Mean ci", "Carbon(g)", "AccLoss%",
            "p95+net(ms)", "SLA%",
        )
        rows = []
        for region, result in zip(self.regions, self.results):
            requests = result.total_requests
            share = requests / self.total_requests * 100.0
            met = sum(
                e.requests
                for e in result.epochs
                if np.isfinite(e.p95_ms) and e.p95_ms <= result.sla_target_ms
            )
            rows.append(
                (
                    region.name,
                    f"{share:.1f}",
                    f"{region.trace.mean():.0f}",
                    f"{result.total_carbon_g:,.0f}",
                    f"{result.accuracy_loss_pct:.2f}",
                    f"{result.p95_ms + region.net_latency_ms:.1f}",
                    f"{met / requests * 100.0:.1f}",
                )
            )
        rows.append(
            (
                "fleet",
                "100.0",
                "-",
                f"{self.total_carbon_g:,.0f}",
                f"{self.accuracy_loss_pct:.2f}",
                "-",
                f"{self.sla_attainment * 100.0:.1f}",
            )
        )
        return headers, rows


class FleetCoordinator:
    """Runs N regional services under one router and one global workload."""

    def __init__(
        self,
        services: list[RegionalService],
        router: Router,
        floor_share: float = DEFAULT_FLOOR_SHARE,
    ) -> None:
        if not services:
            raise ValueError("a fleet needs at least one region")
        # A strictly positive floor keeps every routed rate positive (a
        # zero-rate region has no defined service measurement).
        if not 0.0 < floor_share < 1.0:
            raise ValueError(f"floor share must be in (0, 1), got {floor_share}")
        families = {s.controller.scheme.family for s in services}
        if len(families) != 1:
            raise ValueError(
                f"all regions must serve one model family, got {sorted(families)}"
            )
        steps = {s.controller.step_s for s in services}
        if len(steps) != 1:
            raise ValueError("all regions must share the epoch length")
        names = [s.region.name for s in services]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")
        self.services = list(services)
        self.router = router
        self.floor_share = floor_share
        self.step_s = self.services[0].controller.step_s
        self._nominal = np.array(
            [s.nominal_rate_per_s for s in self.services], dtype=np.float64
        )
        self._capacity = np.array(
            [s.capacity_rate_per_s for s in self.services], dtype=np.float64
        )
        self._pue = np.array([s.region.pue for s in self.services])
        self._latency = np.array(
            [s.region.net_latency_ms for s in self.services]
        )
        self.global_rate_per_s = float(self._nominal.sum())

    @classmethod
    def create(
        cls,
        regions: tuple[Region, ...] | list[Region],
        application: str = "classification",
        scheme: str = "clover",
        router: Router | str = "carbon-greedy",
        lambda_weight: float = PAPER_LAMBDA,
        fidelity: FidelityProfile | str = "default",
        seed: int = 0,
        utilization: float = DEFAULT_BASE_UTILIZATION,
        max_utilization: float = DEFAULT_MAX_UTILIZATION,
        floor_share: float = DEFAULT_FLOOR_SHARE,
        zoo: ModelZoo | None = None,
        perf: PerfModel | None = None,
    ) -> "FleetCoordinator":
        """Assemble one regional service per region plus the router.

        Region ``i`` gets root seed ``seed + i``, so region 0 of an N=1
        fleet reproduces the standalone service at the same seed exactly.
        """
        if isinstance(fidelity, str):
            fidelity = FidelityProfile.by_name(fidelity)
        zoo = zoo or default_zoo()
        perf = perf or PerfModel()
        services = [
            RegionalService.create(
                region=region,
                application=application,
                scheme=scheme,
                lambda_weight=lambda_weight,
                fidelity=fidelity,
                seed=seed + i,
                utilization=utilization,
                max_utilization=max_utilization,
                zoo=zoo,
                perf=perf,
            )
            for i, region in enumerate(regions)
        ]
        if isinstance(router, str):
            router = make_router(router)
        return cls(services, router, floor_share=floor_share)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _context(self, t_h: float) -> RoutingContext:
        ci = np.array([s.observe_ci(t_h) for s in self.services])
        if self.router.needs_sla_caps:
            sla_caps = np.array([s.sla_safe_rate() for s in self.services])
        else:
            # Policies that never consult the SLA caps skip the bisection
            # probes, so the static path stays a pure pass-through.
            sla_caps = self._capacity.copy()
        return RoutingContext(
            t_h=t_h,
            global_rate_per_s=self.global_rate_per_s,
            ci=ci,
            pue=self._pue,
            net_latency_ms=self._latency,
            nominal_rates=self._nominal,
            capacity_rates=self._capacity,
            sla_cap_rates=sla_caps,
            floor_rates=self.floor_share * self._nominal,
        )

    def run(self, duration_h: float | None = None) -> FleetResult:
        """Route and serve the global workload for ``duration_h`` hours."""
        if duration_h is None:
            duration_h = min(s.region.trace.span_h for s in self.services)
        n_epochs = self.services[0].controller.n_epochs(duration_h)
        results = [s.begin_run() for s in self.services]
        for i in range(n_epochs):
            t_h = i * self.step_s / 3600.0
            shares = self.router.split(self._context(t_h))
            rates = shares * self.global_rate_per_s
            for service, result, rate in zip(self.services, results, rates):
                service.step(result, i, t_h, float(rate))
        for service, result in zip(self.services, results):
            service.finalize(result)
        return FleetResult(
            router_name=self.router.name,
            scheme_name=self.services[0].controller.scheme.name,
            application=self.services[0].controller.application,
            global_rate_per_s=self.global_rate_per_s,
            regions=tuple(s.region for s in self.services),
            results=tuple(results),
        )
