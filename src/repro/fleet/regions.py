"""Region: one datacenter location in a multi-region serving fleet.

A region bundles everything that makes a location distinct for carbon-aware
routing: its grid carbon-intensity trace (built on the calibrated profiles
of :mod:`repro.carbon.generator`), its datacenter PUE, the network latency
users pay to reach it, and its GPU count.  The built-in registry covers the
paper's evaluation grids (so a 1-region fleet over ``"us-ciso"`` sees the
*identical* trace the single-cluster experiments use) plus a hydro-dominated
Nordic region that gives the carbon-greedy router a clean target.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.carbon.accounting import DEFAULT_PUE
from repro.carbon.generator import (
    APAC_COAL_SOLAR,
    CISO_MARCH,
    CISO_SEPTEMBER,
    ESO_MARCH,
    GridProfile,
    NORDIC_HYDRO,
    generate_trace,
)
from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.traces import (
    ciso_march_48h,
    ciso_september_48h,
    eso_march_48h,
)
from repro.core.service import PAPER_N_GPUS
from repro.gpu.profiles import DevicePool, profile_by_name

__all__ = [
    "Region",
    "REGION_NAMES",
    "region_by_name",
    "default_fleet_regions",
    "make_region",
]


@dataclass(frozen=True)
class Region:
    """One fleet location: grid signal plus datacenter/network properties.

    Attributes
    ----------
    name:
        Registry key (``"us-ciso"``) — also labels per-region reports.
    trace:
        The region's grid carbon-intensity series (gCO2/kWh over hours).
    pue:
        Datacenter power-usage effectiveness; multiplies IT energy.
    net_latency_ms:
        One-way-equivalent network latency users pay to reach the region;
        added on top of the service p95 when checking the SLA.  In
        demand-model fleets this scalar is derived from the origin→region
        latency matrix (the region's nearest-origin hop; farther origins'
        extra latency is charged per pair).
    n_gpus:
        GPUs provisioned in the region's cluster.  Must be positive — a
        region with no hardware can serve nothing and is a configuration
        error, not a degenerate fleet.
    zone:
        Coarse geographic zone (``"na"``, ``"eu"``, ``"apac"``) used by the
        demand layer to price origin→region network latency.
    devices:
        The region's GPU generations: a registry profile name (``"l4"`` —
        every GPU is that device), an explicit per-GPU tuple of names
        (``("a100", "a100", "l4")`` — mixed fleets are allowed; its length
        must equal ``n_gpus``), or ``None`` for the implicit all-A100
        fleet, which keeps the pre-heterogeneity code path bit for bit.
    """

    name: str
    trace: CarbonIntensityTrace
    pue: float = DEFAULT_PUE
    net_latency_ms: float = 0.0
    n_gpus: int = PAPER_N_GPUS
    zone: str = "na"
    devices: tuple[str, ...] | str | None = None

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ValueError(f"PUE cannot be below 1.0, got {self.pue}")
        if self.net_latency_ms < 0:
            raise ValueError(
                f"network latency must be non-negative, got {self.net_latency_ms}"
            )
        if self.n_gpus <= 0:
            raise ValueError(f"n_gpus must be positive, got {self.n_gpus}")
        # Validate the device mix eagerly: an unknown profile name or a
        # count that disagrees with n_gpus must fail at construction, not
        # deep inside fleet assembly.
        for name in self.device_names:
            profile_by_name(name)

    @property
    def device_names(self) -> tuple[str, ...]:
        """Per-GPU profile names (the implicit fleet is all ``"a100"``)."""
        if self.devices is None:
            return ("a100",) * self.n_gpus
        if isinstance(self.devices, str):
            return (self.devices.lower(),) * self.n_gpus
        if len(self.devices) != self.n_gpus:
            raise ValueError(
                f"region {self.name!r} declares {self.n_gpus} GPUs but "
                f"{len(self.devices)} device entries: {self.devices}"
            )
        return tuple(d.lower() for d in self.devices)

    def device_pool(self) -> DevicePool:
        """The region's GPU fleet as a canonically-ordered device pool."""
        return DevicePool.of(self.device_names)

    def with_gpus(self, n_gpus: int) -> "Region":
        """Clone with a different cluster size (experiment convenience).

        A uniform device mix resizes with the cluster; an explicit mixed
        tuple cannot be resized implicitly — use :meth:`with_devices`.
        """
        devices = self.devices
        if isinstance(devices, tuple):
            if len(set(devices)) == 1:
                devices = devices[0]
            else:
                raise ValueError(
                    f"region {self.name!r} has an explicit mixed device "
                    "fleet; resize it with with_devices(...) instead"
                )
        return replace(self, n_gpus=n_gpus, devices=devices)

    def with_devices(self, devices: tuple[str, ...] | str) -> "Region":
        """Clone with a new device mix (n_gpus follows an explicit tuple)."""
        n_gpus = len(devices) if isinstance(devices, tuple) else self.n_gpus
        return replace(self, n_gpus=n_gpus, devices=devices)


#: Registry rows: profile or trace factory, PUE, network latency, trace seed.
#: The three paper grids reuse the exact embedded evaluation traces so an
#: N=1 fleet reproduces the single-cluster experiments bit-for-bit.
_TRACE_FACTORIES = {
    "us-ciso": ciso_march_48h,
    "us-ciso-sept": ciso_september_48h,
    "uk-eso": eso_march_48h,
}

_REGION_SPECS: dict[str, tuple[GridProfile | None, float, float, str]] = {
    # name: (profile or None if embedded, pue, net latency ms, zone)
    "us-ciso": (CISO_MARCH, 1.5, 8.0, "na"),
    "us-ciso-sept": (CISO_SEPTEMBER, 1.5, 8.0, "na"),
    "uk-eso": (ESO_MARCH, 1.4, 18.0, "eu"),
    "nordic-hydro": (NORDIC_HYDRO, 1.1, 28.0, "eu"),
    "apac-solar": (APAC_COAL_SOLAR, 1.6, 35.0, "apac"),
}

#: Deterministic trace seed for registry regions without an embedded trace.
_SYNTH_SEEDS = {"nordic-hydro": 20210322, "apac-solar": 20230115}

REGION_NAMES = tuple(sorted(_REGION_SPECS))


def region_by_name(
    name: str,
    n_gpus: int = PAPER_N_GPUS,
    devices: tuple[str, ...] | str | None = None,
) -> Region:
    """Build a registry region (``"us-ciso"``, ``"uk-eso"``, ...).

    ``devices`` optionally assigns the region's GPU generations — a
    profile name for a uniform fleet or a per-GPU tuple for a mixed one
    (see :attr:`Region.devices`).
    """
    key = name.lower()
    try:
        profile, pue, latency, zone = _REGION_SPECS[key]
    except KeyError:
        valid = ", ".join(REGION_NAMES)
        raise KeyError(f"unknown region {name!r}; valid: {valid}") from None
    if key in _TRACE_FACTORIES:
        trace = _TRACE_FACTORIES[key]()
    else:
        trace = generate_trace(
            profile, days=2.0, step_h=1.0, rng=_SYNTH_SEEDS[key]
        )
    return Region(
        name=key, trace=trace, pue=pue, net_latency_ms=latency, n_gpus=n_gpus,
        zone=zone, devices=devices,
    )


def default_fleet_regions(n_gpus: int = PAPER_N_GPUS) -> tuple[Region, ...]:
    """The standard 3-region fleet: dirty solar, volatile wind, clean hydro."""
    return tuple(
        region_by_name(name, n_gpus=n_gpus)
        for name in ("us-ciso", "uk-eso", "nordic-hydro")
    )


def make_region(
    name: str,
    profile: GridProfile,
    days: float = 2.0,
    seed: int = 0,
    pue: float = DEFAULT_PUE,
    net_latency_ms: float = 0.0,
    n_gpus: int = PAPER_N_GPUS,
    zone: str = "na",
    devices: tuple[str, ...] | str | None = None,
) -> Region:
    """Build a custom region from a grid profile (deterministic trace)."""
    trace = generate_trace(profile, days=days, step_h=1.0, rng=seed)
    return Region(
        name=name,
        trace=trace,
        pue=pue,
        net_latency_ms=net_latency_ms,
        n_gpus=n_gpus,
        zone=zone,
        devices=devices,
    )
