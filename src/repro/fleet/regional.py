"""RegionalService: the seed single-cluster control loop, fleet-addressable.

This is the extraction seam of the multi-region refactor: one region wraps
exactly the service the seed code assembles
(:meth:`repro.core.service.CarbonAwareInferenceService.create` with the
region's trace, PUE and GPU count) and exposes the controller's step-wise
API plus the two quantities routing needs — the region's capacity cap and
the highest rate at which the currently-deployed configuration still meets
the SLA after the region's network latency.

Driven with its nominal rate every epoch, a ``RegionalService`` is
*behavior-identical* to the seed service: same RNG streams, same evaluator
caches, same accounting arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.controller import EpochRecord, RunResult, ServiceController
from repro.core.service import (
    CarbonAwareInferenceService,
    FidelityProfile,
    PAPER_LAMBDA,
    derive_baseline,
)
from repro.fleet.regions import Region
from repro.models.perf import PerfModel
from repro.models.zoo import ModelZoo, default_zoo
from repro.serving.sla import SlaPolicy
from repro.serving.workload import DEFAULT_BASE_UTILIZATION, default_rate

__all__ = ["RegionalService", "DEFAULT_MAX_UTILIZATION"]

#: How hard routing may load a region relative to its BASE capacity.  The
#: nominal sizing is 65%; the gap to 85% is the headroom a carbon-greedy
#: router can shift into a clean region before its queues blow up.
DEFAULT_MAX_UTILIZATION = 0.85

#: Before the first deployment there is no configuration to bisect a p95
#: against; budgets within this slack of the region's own target are
#: treated as resident-grade (the cell planner tightens budgets by a few
#: ms of safety margin, which must not zero out home traffic at epoch 0).
PRE_DEPLOYMENT_BUDGET_SLACK_MS = 10.0


@dataclass
class RegionalService:
    """One region's fully-assembled service plus its routing envelope.

    With elastic capacity enabled the coordinator drives
    :meth:`set_awake` every epoch; the routing envelope
    (:meth:`sla_safe_rate`, :attr:`awake_capacity_rate_per_s`) and every
    evaluator probe are then computed against the *awake* GPU subset, not
    the physical pool.  Fully awake (the default) is the seed path.
    """

    region: Region
    service: CarbonAwareInferenceService
    nominal_rate_per_s: float
    capacity_rate_per_s: float
    #: Awake-GPU override (``None`` = fully awake, the always-on path).
    _awake_gpus: int | None = field(default=None, init=False, repr=False)

    @classmethod
    def create(
        cls,
        region: Region,
        application: str = "classification",
        scheme: str = "clover",
        lambda_weight: float = PAPER_LAMBDA,
        fidelity: FidelityProfile | str = "default",
        seed: int = 0,
        utilization: float = DEFAULT_BASE_UTILIZATION,
        max_utilization: float = DEFAULT_MAX_UTILIZATION,
        accuracy_floor_pct: float | None = None,
        zoo: ModelZoo | None = None,
        perf: PerfModel | None = None,
    ) -> "RegionalService":
        """Assemble the region's service exactly as the seed facade does.

        The one fleet-specific twist is the SLA floor: the region's BASE
        deployment is measured exactly as the seed does it, then the p95
        target is *tightened* by the region's network latency, so every
        scheme decision inside the region already accounts for the hop its
        users pay.  A region with zero network latency gets the untouched
        seed baseline — the N=1 equivalence path.
        """
        if not utilization < max_utilization < 1.0:
            raise ValueError(
                f"need utilization < max_utilization < 1, got "
                f"{utilization} and {max_utilization}"
            )
        if isinstance(fidelity, str):
            fidelity = FidelityProfile.by_name(fidelity)
        zoo = zoo or default_zoo()
        perf = perf or PerfModel()
        fam = zoo.for_application(application)
        nominal = default_rate(fam, perf, region.n_gpus, utilization)
        baseline = derive_baseline(
            zoo=zoo,
            perf=perf,
            family=fam.name,
            n_gpus=region.n_gpus,
            rate_per_s=nominal,
            ci_base=region.trace.mean(),
            des_requests=fidelity.sla_des_requests,
            seed=seed,
            pue=region.pue,
        )
        if region.net_latency_ms > 0.0:
            budget = baseline.sla.p95_target_ms - region.net_latency_ms
            if budget <= 0.0:
                raise ValueError(
                    f"region {region.name!r}: network latency "
                    f"{region.net_latency_ms:.1f} ms exceeds the SLA target "
                    f"{baseline.sla.p95_target_ms:.1f} ms — it can never "
                    "serve within the SLA"
                )
            baseline = replace(baseline, sla=SlaPolicy(p95_target_ms=budget))
        service = CarbonAwareInferenceService.create(
            application=application,
            scheme=scheme,
            n_gpus=region.n_gpus,
            lambda_weight=lambda_weight,
            trace=region.trace,
            zoo=zoo,
            perf=perf,
            utilization=utilization,
            accuracy_floor_pct=accuracy_floor_pct,
            fidelity=fidelity,
            pue=region.pue,
            seed=seed,
            baseline=baseline,
        )
        return cls(
            region=region,
            service=service,
            nominal_rate_per_s=nominal,
            capacity_rate_per_s=default_rate(
                fam, perf, region.n_gpus, max_utilization
            ),
        )

    # ------------------------------------------------------------------ #
    # controller pass-throughs
    # ------------------------------------------------------------------ #

    @property
    def controller(self) -> ServiceController:
        return self.service.controller

    @property
    def sla_target_ms(self) -> float:
        """Service-side p95 target, already tightened by network latency."""
        return self.controller.objective.sla.p95_target_ms

    @property
    def user_sla_target_ms(self) -> float:
        """The raw end-to-end p95 target users hold the fleet to.

        Undoes the assembly-time tightening: service target plus the
        network hop it was tightened by.  Every region of a fleet shares
        this number (the application SLA), which is what lets demand-model
        runs judge attainment per (origin, serving-region) pair — service
        p95 plus the *pair's* matrix latency against this target.
        """
        return self.sla_target_ms + self.region.net_latency_ms

    def observe_ci(self, t_h: float) -> float:
        """The region's grid carbon intensity at trace time ``t_h``."""
        return self.controller.monitor.observe(t_h)

    # ------------------------------------------------------------------ #
    # elastic capacity
    # ------------------------------------------------------------------ #

    @property
    def power_model(self):
        """The region's node power model (sleep-state watts live here)."""
        return self.controller.measure_evaluator.perf.power

    @property
    def awake_gpus(self) -> int:
        """GPUs currently online (the full pool unless gated)."""
        n = self.region.n_gpus
        return n if self._awake_gpus is None else self._awake_gpus

    @property
    def awake_capacity_rate_per_s(self) -> float:
        """The capacity cap scaled to the awake subset.

        Fully awake returns the stored cap untouched (``x * n / n`` does
        not always round-trip in IEEE floats, and the always-on path must
        stay bit-for-bit the seed path).
        """
        if self._awake_gpus is None:
            return self.capacity_rate_per_s
        return (
            self.capacity_rate_per_s * self._awake_gpus / self.region.n_gpus
        )

    def set_awake(self, awake_gpus: int | None) -> None:
        """Gate the region to ``awake_gpus`` online GPUs.

        Caps both evaluators (optimization candidates and DES
        measurements) to the awake subset, so SLA-cap bisections and the
        controller's accounting all see the gated cluster.  ``None`` or
        the full pool restores the bit-for-bit always-on path.
        """
        n = self.region.n_gpus
        if awake_gpus is not None and not 1 <= awake_gpus <= n:
            raise ValueError(
                f"awake GPUs must be in [1, {n}], got {awake_gpus}"
            )
        normalized = (
            None if awake_gpus is None or awake_gpus >= n else awake_gpus
        )
        self._awake_gpus = normalized
        self.controller.measure_evaluator.set_awake_gpus(normalized)
        opt_evaluator = getattr(self.service.scheme, "evaluator", None)
        if opt_evaluator is not None:
            opt_evaluator.set_awake_gpus(normalized)

    def begin_run(self) -> RunResult:
        self.set_awake(None)  # a fresh run boots fully provisioned
        return self.controller.begin_run()

    def step(
        self,
        result: RunResult,
        index: int,
        t_h: float,
        rate_per_s: float,
        capacity=None,
    ) -> EpochRecord:
        return self.controller.step(
            result, index, t_h, rate_per_s, capacity=capacity
        )

    def finalize(self, result: RunResult) -> RunResult:
        return self.controller.finalize(result)

    # ------------------------------------------------------------------ #
    # routing envelope
    # ------------------------------------------------------------------ #

    def sla_safe_rate(
        self, budget_ms: float | None = None, iters: int = 12
    ) -> float:
        """Highest rate at which the deployed config should meet the SLA.

        Bisects the analytic p95 estimate of the *currently deployed*
        configuration against ``budget_ms`` — by default the
        network-tightened :attr:`sla_target_ms`; demand-mode routing
        passes per-(origin, region) budgets (the raw end-to-end target
        minus the pair's matrix latency) so far-origin traffic throttles a
        region exactly as hard as its extra hop demands (p95 is monotone
        in rate).  Before the first deployment — or when even a trickle
        violates the budget — it returns the capacity cap or zero
        respectively; zero means the region can only carry its
        un-shiftable floor traffic this epoch.

        All of it is priced against the *awake* capacity: while GPUs are
        gated, both the upper bisection bound and every p95 probe see the
        trimmed cluster, so the envelope honestly shrinks with the pool.
        """
        budget = self.sla_target_ms if budget_ms is None else budget_ms
        if budget <= 0.0:
            return 0.0
        deployed = self.controller.deployed
        if deployed is None:
            # Nothing to bisect against yet.  Resident-grade budgets —
            # within a small slack of the region's own target, covering
            # the cell planner's safety margin — get the capacity cap
            # (the PR-1 behaviour); genuinely tighter far-origin budgets
            # get nothing: epoch zero is no time to gamble remote traffic
            # on a configuration that hasn't been measured.
            slack = PRE_DEPLOYMENT_BUDGET_SLACK_MS
            return (
                self.awake_capacity_rate_per_s
                if budget >= self.sla_target_ms - slack
                else 0.0
            )
        estimator = self.service.scheme.evaluator

        def p95_at(rate: float) -> float:
            return estimator.evaluate(deployed, rate_per_s=rate).p95_ms

        hi = self.awake_capacity_rate_per_s
        if p95_at(hi) <= budget:
            return hi
        lo = 0.01 * self.nominal_rate_per_s
        if p95_at(lo) > budget:
            return 0.0
        for _ in range(iters):
            mid = 0.5 * (lo + hi)
            if p95_at(mid) <= budget:
                lo = mid
            else:
                hi = mid
        return lo

    def effective_p95_ms(self, service_p95_ms: float) -> float:
        """End-to-end p95 a user of this region observes."""
        if not np.isfinite(service_p95_ms):
            return float("inf")
        return service_p95_ms + self.region.net_latency_ms
