"""RegionalService: the seed single-cluster control loop, fleet-addressable.

This is the extraction seam of the multi-region refactor: one region wraps
exactly the service the seed code assembles
(:meth:`repro.core.service.CarbonAwareInferenceService.create` with the
region's trace, PUE and GPU count) and exposes the controller's step-wise
API plus the two quantities routing needs — the region's capacity cap and
the highest rate at which the currently-deployed configuration still meets
the SLA after the region's network latency.

Driven with its nominal rate every epoch, a ``RegionalService`` is
*behavior-identical* to the seed service: same RNG streams, same evaluator
caches, same accounting arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.controller import EpochRecord, RunResult, ServiceController
from repro.core.service import (
    CarbonAwareInferenceService,
    FidelityProfile,
    PAPER_LAMBDA,
    derive_baseline,
)
from repro.fleet.regions import Region
from repro.gpu.profiles import A100_PROFILE, DevicePool
from repro.models.perf import PerfModel
from repro.models.zoo import ModelZoo, default_zoo
from repro.serving.sla import SlaPolicy
from repro.serving.workload import DEFAULT_BASE_UTILIZATION, default_rate

__all__ = ["RegionalService", "DEFAULT_MAX_UTILIZATION"]

#: How hard routing may load a region relative to its BASE capacity.  The
#: nominal sizing is 65%; the gap to 85% is the headroom a carbon-greedy
#: router can shift into a clean region before its queues blow up.
DEFAULT_MAX_UTILIZATION = 0.85

#: Before the first deployment there is no configuration to bisect a p95
#: against; budgets within this slack of the region's own target are
#: treated as resident-grade (the cell planner tightens budgets by a few
#: ms of safety margin, which must not zero out home traffic at epoch 0).
PRE_DEPLOYMENT_BUDGET_SLACK_MS = 10.0


@dataclass
class RegionalService:
    """One region's fully-assembled service plus its routing envelope.

    With elastic capacity enabled the coordinator drives
    :meth:`set_awake` every epoch; the routing envelope
    (:meth:`sla_safe_rate`, :attr:`awake_capacity_rate_per_s`) and every
    evaluator probe are then computed against the *awake* GPU subset, not
    the physical pool.  Fully awake (the default) is the seed path.
    """

    region: Region
    service: CarbonAwareInferenceService
    nominal_rate_per_s: float
    capacity_rate_per_s: float
    #: The region's device pool; ``None`` is the implicit all-A100 fleet
    #: (the bit-for-bit pre-heterogeneity path).
    device_pool: DevicePool | None = None
    #: Per-device max-utilization rates, pool-canonical order (``None``
    #: for the homogeneous implicit fleet).
    device_capacity_rates: tuple[float, ...] | None = None
    #: Per-device joules/request at the sizing operating point,
    #: pool-canonical order (most efficient first); the last awake entry
    #: is the marginal-device efficiency signal routing consumes.
    device_energies_j: tuple[float, ...] | None = None
    #: Joules/request of the implicit A100 fleet (used when no pool).
    reference_energy_j: float = 0.0
    #: Awake-GPU override (``None`` = fully awake, the always-on path).
    _awake_gpus: int | None = field(default=None, init=False, repr=False)

    @classmethod
    def create(
        cls,
        region: Region,
        application: str = "classification",
        scheme: str = "clover",
        lambda_weight: float = PAPER_LAMBDA,
        fidelity: FidelityProfile | str = "default",
        seed: int = 0,
        utilization: float = DEFAULT_BASE_UTILIZATION,
        max_utilization: float = DEFAULT_MAX_UTILIZATION,
        accuracy_floor_pct: float | None = None,
        zoo: ModelZoo | None = None,
        perf: PerfModel | None = None,
    ) -> "RegionalService":
        """Assemble the region's service exactly as the seed facade does.

        The one fleet-specific twist is the SLA floor: the region's BASE
        deployment is measured exactly as the seed does it, then the p95
        target is *tightened* by the region's network latency, so every
        scheme decision inside the region already accounts for the hop its
        users pay.  A region with zero network latency gets the untouched
        seed baseline — the N=1 equivalence path.
        """
        if not utilization < max_utilization < 1.0:
            raise ValueError(
                f"need utilization < max_utilization < 1, got "
                f"{utilization} and {max_utilization}"
            )
        if isinstance(fidelity, str):
            fidelity = FidelityProfile.by_name(fidelity)
        zoo = zoo or default_zoo()
        perf = perf or PerfModel()
        fam = zoo.for_application(application)
        # The region's silicon: an all-A100 pool normalizes to None so the
        # homogeneous fleet keeps the pre-heterogeneity path bit for bit.
        pool = region.device_pool()
        if pool.is_default_a100:
            pool = None
        scale_sum = None if pool is None else pool.throughput_scale_sum
        nominal = default_rate(
            fam, perf, region.n_gpus, utilization,
            throughput_scale_sum=scale_sum,
        )
        baseline = derive_baseline(
            zoo=zoo,
            perf=perf,
            family=fam.name,
            n_gpus=region.n_gpus,
            rate_per_s=nominal,
            ci_base=region.trace.mean(),
            des_requests=fidelity.sla_des_requests,
            seed=seed,
            pue=region.pue,
            device_pool=pool,
        )
        if region.net_latency_ms > 0.0:
            budget = baseline.sla.p95_target_ms - region.net_latency_ms
            if budget <= 0.0:
                raise ValueError(
                    f"region {region.name!r}: network latency "
                    f"{region.net_latency_ms:.1f} ms exceeds the SLA target "
                    f"{baseline.sla.p95_target_ms:.1f} ms — it can never "
                    "serve within the SLA"
                )
            baseline = replace(baseline, sla=SlaPolicy(p95_target_ms=budget))
        service = CarbonAwareInferenceService.create(
            application=application,
            scheme=scheme,
            n_gpus=region.n_gpus,
            lambda_weight=lambda_weight,
            trace=region.trace,
            zoo=zoo,
            perf=perf,
            utilization=utilization,
            accuracy_floor_pct=accuracy_floor_pct,
            fidelity=fidelity,
            pue=region.pue,
            seed=seed,
            baseline=baseline,
            device_pool=pool,
        )
        full = default_rate(
            fam, perf, region.n_gpus, max_utilization,
            throughput_scale_sum=scale_sum,
        )
        per_gpu_capacity = None
        if pool is not None:
            unit = full / pool.throughput_scale_sum
            per_gpu_capacity = tuple(
                unit * s for s in pool.throughput_scales()
            )
        energies = tuple(
            p.reference_energy_per_request_j(perf, fam.largest, utilization)
            for p in (pool.profiles if pool is not None else ())
        )
        return cls(
            region=region,
            service=service,
            nominal_rate_per_s=nominal,
            capacity_rate_per_s=full,
            device_pool=pool,
            device_capacity_rates=per_gpu_capacity,
            device_energies_j=energies or None,
            reference_energy_j=A100_PROFILE.reference_energy_per_request_j(
                perf, fam.largest, utilization
            ),
        )

    # ------------------------------------------------------------------ #
    # controller pass-throughs
    # ------------------------------------------------------------------ #

    @property
    def controller(self) -> ServiceController:
        return self.service.controller

    @property
    def sla_target_ms(self) -> float:
        """Service-side p95 target, already tightened by network latency."""
        return self.controller.objective.sla.p95_target_ms

    @property
    def user_sla_target_ms(self) -> float:
        """The raw end-to-end p95 target users hold the fleet to.

        Undoes the assembly-time tightening: service target plus the
        network hop it was tightened by.  Every region of a fleet shares
        this number (the application SLA), which is what lets demand-model
        runs judge attainment per (origin, serving-region) pair — service
        p95 plus the *pair's* matrix latency against this target.
        """
        return self.sla_target_ms + self.region.net_latency_ms

    def observe_ci(self, t_h: float) -> float:
        """The region's grid carbon intensity at trace time ``t_h``."""
        return self.controller.monitor.observe(t_h)

    # ------------------------------------------------------------------ #
    # elastic capacity
    # ------------------------------------------------------------------ #

    @property
    def power_model(self):
        """The region's node power model (sleep-state watts live here)."""
        return self.controller.measure_evaluator.perf.power

    @property
    def awake_gpus(self) -> int:
        """GPUs currently online (the full pool unless gated)."""
        n = self.region.n_gpus
        return n if self._awake_gpus is None else self._awake_gpus

    @property
    def awake_capacity_rate_per_s(self) -> float:
        """The capacity cap scaled to the awake subset.

        Fully awake returns the stored cap untouched (``x * n / n`` does
        not always round-trip in IEEE floats, and the always-on path must
        stay bit-for-bit the seed path).  A heterogeneous pool sums the
        awake canonical *prefix* of per-device rates — the devices left
        awake are the most efficient ones, but not necessarily an equal
        share of capacity (an awake L4 carries less than a slept A100
        released).
        """
        if self._awake_gpus is None:
            return self.capacity_rate_per_s
        if self.device_capacity_rates is not None:
            return float(sum(self.device_capacity_rates[: self._awake_gpus]))
        return (
            self.capacity_rate_per_s * self._awake_gpus / self.region.n_gpus
        )

    def awake_static_watts(self) -> float:
        """Always-on draw of the awake devices (pool-aware)."""
        if self.device_pool is None:
            return (
                self.power_model.static_watts_per_gpu() * self.awake_gpus
            )
        return float(
            sum(
                p.power.static_watts_per_gpu()
                for p in self.device_pool.profiles[: self.awake_gpus]
            )
        )

    def marginal_energy_per_request_j(
        self, static_amortize_utilization: float | None = None
    ) -> float:
        """Joules one more request costs on this region's silicon.

        The efficiency signal routing ranks on: grid intensity times this
        is the gCO2 an additional request routed here costs.  The dynamic
        term is the *deployed configuration's* joules per request — which
        is what makes the signal honest on heterogeneous fleets: a
        MIG-partitioned A100 serving small variants can out-efficiency an
        unpartitionable L4 even though the L4's BASE deployment is leaner,
        and the signal must reflect the silicon as actually configured,
        not as shipped.

        What happens to static draw depends on whether idle power follows
        traffic.  In an **always-on** fleet
        (``static_amortize_utilization=None``) the idle watts are paid
        wherever the request goes, so only dynamic energy moves with the
        routing decision and static is excluded.  In a **gated** fleet the
        capacity manager sleeps the devices a drained region stops
        needing, so a marginal request also owns its share of the marginal
        device's static draw — amortized at the gating policy's target
        utilization of that device's capacity.

        Priced by the analytic evaluator at the awake-capped nominal rate
        (cached by (graph, rate, awake, pool) — one evaluation per
        deployment change).  Before the first deployment it falls back to
        the closed-form BASE energy of the marginal (least-efficient
        awake) device.
        """
        deployed = self.controller.deployed
        if deployed is None:
            if self.device_energies_j is not None:
                return self.device_energies_j[self.awake_gpus - 1]
            return self.reference_energy_j
        rate = min(self.nominal_rate_per_s, self.awake_capacity_rate_per_s)
        ev = self.service.scheme.evaluator.evaluate(deployed, rate_per_s=rate)
        dynamic_w = max(ev.power_watts - self.awake_static_watts(), 0.0)
        energy = dynamic_w / rate
        if static_amortize_utilization is not None:
            marginal = self.awake_gpus - 1
            if self.device_pool is not None:
                static_w = self.device_pool.profiles[
                    marginal
                ].power.static_watts_per_gpu()
                device_rate = self.device_capacity_rates[marginal]
            else:
                static_w = self.power_model.static_watts_per_gpu()
                device_rate = self.capacity_rate_per_s / self.region.n_gpus
            energy += static_w / (static_amortize_utilization * device_rate)
        return energy

    def device_static_watts(self) -> tuple[float, ...]:
        """Per-device always-on static draw, pool-canonical order."""
        if self.device_pool is None:
            return (
                self.power_model.static_watts_per_gpu(),
            ) * self.region.n_gpus
        return tuple(
            p.power.static_watts_per_gpu() for p in self.device_pool.profiles
        )

    def device_wake_energies_j(self) -> tuple[float, ...]:
        """Per-device wake transition energies, pool-canonical order.

        The implicit all-A100 fleet carries the A100 profile's default on
        every position — the pre-per-profile scalar, bit for bit.
        """
        if self.device_pool is None:
            return (A100_PROFILE.wake_energy_j,) * self.region.n_gpus
        return self.device_pool.wake_energies_j()

    def wake_transition_energy_j(
        self, first: int, last: int, override_j: float | None = None
    ) -> float:
        """Transition energy of waking canonical positions [first, last).

        Wakes always extend the awake canonical prefix, so the devices
        woken in one epoch are a contiguous position range.  With a
        policy-level ``override_j`` every device costs that scalar (the
        pre-per-profile behaviour); otherwise each position owes its own
        profile's :attr:`~repro.gpu.profiles.DeviceProfile.wake_energy_j`.
        """
        if not 0 <= first <= last <= self.region.n_gpus:
            raise ValueError(
                f"wake range [{first}, {last}) outside the pool of "
                f"{self.region.n_gpus}"
            )
        if override_j is not None:
            return override_j * (last - first)
        return float(sum(self.device_wake_energies_j()[first:last]))

    def min_static_watts_per_gpu(self) -> float:
        """The smallest always-on per-GPU draw across the region's pool.

        The gating wake-energy invariant (a gated epoch never out-spends
        its always-on twin) must hold for *every* device, so the ceiling
        is checked against the least power-hungry one.
        """
        if self.device_pool is None:
            return self.power_model.static_watts_per_gpu()
        return min(
            p.power.static_watts_per_gpu() for p in self.device_pool.profiles
        )

    def sleeping_draw_watts(self, awake_gpus: int) -> float:
        """Total sleep-state draw of the gated devices at ``awake_gpus``.

        Homogeneous fleets multiply the power model's sleep watts by the
        sleeping count (the pre-heterogeneity arithmetic, bit for bit);
        pools sum each gated device's own sleep draw — sleeping always
        trims the canonical tail, so the gated set is the suffix.
        """
        sleeping = self.region.n_gpus - awake_gpus
        if sleeping < 0:
            raise ValueError(
                f"awake count {awake_gpus} exceeds the pool of "
                f"{self.region.n_gpus}"
            )
        if self.device_pool is None:
            return self.power_model.sleep_watts_per_gpu() * sleeping
        return float(
            sum(
                p.power.sleep_watts
                for p in self.device_pool.profiles[awake_gpus:]
            )
        )

    def set_awake(self, awake_gpus: int | None) -> None:
        """Gate the region to ``awake_gpus`` online GPUs.

        Caps both evaluators (optimization candidates and DES
        measurements) to the awake subset, so SLA-cap bisections and the
        controller's accounting all see the gated cluster.  ``None`` or
        the full pool restores the bit-for-bit always-on path.
        """
        n = self.region.n_gpus
        if awake_gpus is not None and not 1 <= awake_gpus <= n:
            raise ValueError(
                f"awake GPUs must be in [1, {n}], got {awake_gpus}"
            )
        normalized = (
            None if awake_gpus is None or awake_gpus >= n else awake_gpus
        )
        self._awake_gpus = normalized
        self.controller.measure_evaluator.set_awake_gpus(normalized)
        opt_evaluator = getattr(self.service.scheme, "evaluator", None)
        if opt_evaluator is not None:
            opt_evaluator.set_awake_gpus(normalized)

    def begin_run(self) -> RunResult:
        self.set_awake(None)  # a fresh run boots fully provisioned
        return self.controller.begin_run()

    def step(
        self,
        result: RunResult,
        index: int,
        t_h: float,
        rate_per_s: float,
        capacity=None,
    ) -> EpochRecord:
        return self.controller.step(
            result, index, t_h, rate_per_s, capacity=capacity
        )

    def finalize(self, result: RunResult) -> RunResult:
        return self.controller.finalize(result)

    # ------------------------------------------------------------------ #
    # routing envelope
    # ------------------------------------------------------------------ #

    def sla_safe_rate(
        self, budget_ms: float | None = None, iters: int = 12
    ) -> float:
        """Highest rate at which the deployed config should meet the SLA.

        Bisects the analytic p95 estimate of the *currently deployed*
        configuration against ``budget_ms`` — by default the
        network-tightened :attr:`sla_target_ms`; demand-mode routing
        passes per-(origin, region) budgets (the raw end-to-end target
        minus the pair's matrix latency) so far-origin traffic throttles a
        region exactly as hard as its extra hop demands (p95 is monotone
        in rate).  Before the first deployment — or when even a trickle
        violates the budget — it returns the capacity cap or zero
        respectively; zero means the region can only carry its
        un-shiftable floor traffic this epoch.

        All of it is priced against the *awake* capacity: while GPUs are
        gated, both the upper bisection bound and every p95 probe see the
        trimmed cluster, so the envelope honestly shrinks with the pool.
        """
        budget = self.sla_target_ms if budget_ms is None else budget_ms
        return float(self.sla_safe_rates(np.array([budget]), iters=iters)[0])

    def sla_safe_rates(
        self, budgets_ms: np.ndarray, iters: int = 12
    ) -> np.ndarray:
        """Batched :meth:`sla_safe_rate` over an array of budgets.

        All budgets bisect in lockstep against one deployed configuration,
        so each of the ``iters`` steps is a single batched estimator call
        instead of one scalar evaluation per budget.  Every row follows
        exactly the scalar method's probe sequence (its bracket updates
        depend only on its own row), and the scalar method delegates here,
        so the two are identical by construction.
        """
        budgets = np.asarray(budgets_ms, dtype=np.float64)
        out = np.zeros(budgets.shape)
        pos = budgets > 0.0
        if not np.any(pos):
            return out
        deployed = self.controller.deployed
        if deployed is None:
            # Nothing to bisect against yet.  Resident-grade budgets —
            # within a small slack of the region's own target, covering
            # the cell planner's safety margin — get the capacity cap
            # (the PR-1 behaviour); genuinely tighter far-origin budgets
            # get nothing: epoch zero is no time to gamble remote traffic
            # on a configuration that hasn't been measured.
            slack = PRE_DEPLOYMENT_BUDGET_SLACK_MS
            out[pos & (budgets >= self.sla_target_ms - slack)] = (
                self.awake_capacity_rate_per_s
            )
            return out
        estimator = self.service.scheme.evaluator

        def p95_at(rates: np.ndarray) -> np.ndarray:
            evs = estimator.evaluate_rates(deployed, rates)
            return np.array([e.p95_ms for e in evs])

        hi0 = self.awake_capacity_rate_per_s
        lo0 = 0.01 * self.nominal_rate_per_s
        p95_hi, p95_lo = p95_at(np.array([hi0, lo0]))
        easy = pos & (p95_hi <= budgets)
        out[easy] = hi0
        active = pos & ~easy & (p95_lo <= budgets)
        if np.any(active):
            idx = np.nonzero(active)
            lo = np.full(budgets.shape, lo0)
            hi = np.full(budgets.shape, hi0)
            for _ in range(iters):
                mid = 0.5 * (lo[idx] + hi[idx])
                ok = p95_at(mid) <= budgets[idx]
                lo[idx] = np.where(ok, mid, lo[idx])
                hi[idx] = np.where(ok, hi[idx], mid)
            out[active] = lo[active]
        return out

    def effective_p95_ms(self, service_p95_ms: float) -> float:
        """End-to-end p95 a user of this region observes."""
        if not np.isfinite(service_p95_ms):
            return float("inf")
        return service_p95_ms + self.region.net_latency_ms
