"""Sweeps: grid-expand a ScenarioSpec and run the grid, optionally parallel.

EcoServe's lesson (PAPERS.md) is that provisioning/scheduling knobs are
worth sweeping *jointly*; this module makes that a one-liner over any spec
field.  :func:`expand` takes a base spec plus ``{dotted.path: values}``
axes and returns the full Cartesian grid as specs (via
:meth:`ScenarioSpec.override`, so unknown paths fail with the valid
fields); :func:`run_sweep` executes a spec list — serially, or fanned out
over a process pool, which is the right grain for parallelism here:
scenarios are independent simulations minutes long, so workers scale
near-linearly where the per-epoch thread driver is GIL-bound.

>>> from repro.scenarios import RegionSpec, ScenarioSpec
>>> base = ScenarioSpec(regions=(RegionSpec(name="us-ciso"),))
>>> grid = expand(base, {"routing.router": ["static", "latency"], "seed": [0, 1]})
>>> [(s.routing.router, s.seed) for s in grid]
[('static', 0), ('static', 1), ('latency', 0), ('latency', 1)]
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence

from repro.fleet import FleetResult
from repro.scenarios.scenario import execute_spec
from repro.scenarios.spec import ScenarioSpec

__all__ = ["expand", "run_sweep", "sweep"]


def expand(
    base: ScenarioSpec, axes: Mapping[str, Sequence]
) -> list[ScenarioSpec]:
    """The Cartesian grid of ``base`` with every axis combination applied.

    ``axes`` maps dotted spec paths (``"routing.router"``, ``"seed"``,
    ``"gating.mode"``) to value sequences.  The grid is in row-major
    order — the first axis varies slowest — which keeps sweep tables
    grouped by the first knob.  Every produced spec is validated on
    construction, so an invalid combination fails at expansion time with
    the offending values in the message.
    """
    if not axes:
        return [base]
    paths = list(axes)
    for path, values in axes.items():
        if isinstance(values, str) or not isinstance(values, Sequence):
            raise ValueError(
                f"sweep axis {path!r} needs a sequence of values, "
                f"got {values!r}"
            )
        if len(values) == 0:
            raise ValueError(f"sweep axis {path!r} has no values")
    grid = []
    for combo in itertools.product(*(axes[p] for p in paths)):
        spec = base
        for path, value in zip(paths, combo):
            spec = spec.override(path, value)
        grid.append(spec)
    return grid


def run_sweep(
    specs: Sequence[ScenarioSpec], workers: int | None = None
) -> list[FleetResult]:
    """Run every spec, returning results in spec order.

    ``workers`` >= 2 executes the scenarios in a process pool of that
    many workers (each scenario is an independent deterministic
    simulation, so the parallel results are identical to the serial ones,
    order included); ``None``/1 runs them serially in-process.  Duplicate
    specs are executed once and their result shared.
    """
    specs = list(specs)
    if workers is not None and workers < 1:
        raise ValueError(f"sweep workers must be >= 1, got {workers}")
    todo = list(dict.fromkeys(specs))
    if workers is None or workers <= 1 or len(todo) <= 1:
        done = [execute_spec(spec) for spec in todo]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(workers, len(todo))
        ) as pool:
            done = list(pool.map(execute_spec, todo))
    by_spec = dict(zip(todo, done))
    return [by_spec[spec] for spec in specs]


def sweep(
    base: ScenarioSpec,
    axes: Mapping[str, Sequence],
    workers: int | None = None,
) -> list[tuple[ScenarioSpec, FleetResult]]:
    """Expand ``base`` over ``axes`` and run the grid: (spec, result) pairs."""
    grid = expand(base, axes)
    return list(zip(grid, run_sweep(grid, workers=workers)))
