"""ScenarioSpec: one declarative, serializable description per experiment.

Four PRs of fleet features each grew the harness a new hand-written
experiment function, another ``FleetSpec`` field and another CLI flag —
scenario diversity was costing quadratic glue.  This module replaces that
accretion with one composable value type: a :class:`ScenarioSpec` is the
*entire* description of a fleet experiment — topology, per-region devices
**and schemes**, demand model, routing policy, gating policy, fidelity and
seed — as plain frozen dataclasses of plain data.  Everything downstream
(the :class:`~repro.scenarios.scenario.Scenario` executor, the sweep
expander, the TOML/JSON serializers, the experiment registry and both CLI
front doors) consumes this one type, so a new scenario axis is a new spec
field instead of a new fork of the harness.

Specs are hashable (they memoize runs), comparable (legacy shims are
tested to build byte-equal specs) and strict: every field is validated at
construction against the same registries the fleet layer uses, so a typo
fails at spec time with the valid choices in the message, not three layers
deep in assembly.

>>> spec = ScenarioSpec(
...     regions=(
...         RegionSpec(name="nordic-hydro", scheme="co2opt"),
...         RegionSpec(name="us-ciso"),
...     ),
...     scheme="clover", n_gpus=2,
...     routing=RoutingSpec(router="carbon-greedy"),
... )
>>> spec.region_names
('nordic-hydro', 'us-ciso')
>>> spec.region_schemes  # per-region override falls back to the default
('co2opt', 'clover')
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.carbon.forecast import FORECASTER_NAMES
from repro.core.schemes import SCHEME_NAMES
from repro.core.service import PAPER_LAMBDA, PAPER_N_GPUS
from repro.fleet.capacity import GATING_MODES
from repro.fleet.regions import REGION_NAMES
from repro.fleet.routing import ROUTER_NAMES
from repro.gpu.profiles import DEVICE_NAMES
from repro.models.families import APPLICATIONS
from repro.shifting.batch import ARRIVAL_PROFILES

#: Applications the default model zoo serves (Table-1 registry).
APPLICATION_NAMES = tuple(sorted(APPLICATIONS))

__all__ = [
    "RegionSpec",
    "DemandSpec",
    "RoutingSpec",
    "GatingSpec",
    "BatchSpec",
    "ScenarioSpec",
    "FIDELITY_NAMES",
    "DEMAND_KINDS",
]

#: Fidelity profiles a spec may name (see FidelityProfile.by_name).
FIDELITY_NAMES = ("smoke", "default", "paper")

#: Demand-model kinds a spec may name (None = the constant PR-1 workload).
DEMAND_KINDS = ("constant", "diurnal")

#: Routers whose ranking carries the efficiency term (the only ones the
#: ``efficiency_weighted=False`` ablation applies to).
EFFICIENCY_ROUTERS = ("carbon-greedy", "forecast-aware")


def _choice(label: str, value: str, valid: tuple[str, ...]) -> str:
    """Validate one registry-backed choice with the choices in the error."""
    if value not in valid:
        raise ValueError(
            f"unknown {label} {value!r}; valid: {', '.join(valid)}"
        )
    return value


@dataclass(frozen=True)
class RegionSpec:
    """One region of the fleet, with optional per-region overrides.

    Attributes
    ----------
    name:
        Fleet region registry key (``"us-ciso"``, ``"nordic-hydro"``, ...).
    n_gpus:
        Cluster size override; ``None`` inherits :attr:`ScenarioSpec.n_gpus`.
    devices:
        GPU generations: a profile name (every GPU that device), an
        explicit per-GPU tuple (mixed pools), or ``None`` for the implicit
        all-A100 fleet.
    scheme:
        Per-region optimization scheme override; ``None`` inherits
        :attr:`ScenarioSpec.scheme`.  This is what expresses mixed-scheme
        fleets (``co2opt`` where the grid is clean, ``clover`` where it is
        dirty).
    """

    name: str
    n_gpus: int | None = None
    devices: tuple[str, ...] | str | None = None
    scheme: str | None = None

    def __post_init__(self) -> None:
        _choice("region", self.name, REGION_NAMES)
        if self.n_gpus is not None and self.n_gpus <= 0:
            raise ValueError(
                f"region {self.name!r}: n_gpus must be positive, "
                f"got {self.n_gpus}"
            )
        if isinstance(self.devices, list):
            object.__setattr__(self, "devices", tuple(self.devices))
        if self.devices is not None:
            names = (
                (self.devices,)
                if isinstance(self.devices, str)
                else self.devices
            )
            for device in names:
                _choice("device", device, DEVICE_NAMES)
        if self.scheme is not None:
            _choice("scheme", self.scheme, SCHEME_NAMES)


@dataclass(frozen=True)
class DemandSpec:
    """The workload: constant global rate or geo-diurnal per-origin demand.

    ``kind=None`` is the constant PR-1 workload (the fleet's nominal
    sizing); ``"diurnal"`` switches to nonstationary geo-origin demand
    with per-(origin, region) SLA charging.  ``scale`` sizes the demand
    model's mean against the fleet's nominal rate; the ramp/drain shares
    bound per-hour traffic migration (``None`` = unconstrained).
    """

    kind: str | None = None
    scale: float = 0.8
    ramp_share_per_h: float | None = None
    drain_share_per_h: float | None = None

    def __post_init__(self) -> None:
        if self.kind is not None:
            _choice("demand kind", self.kind, DEMAND_KINDS)
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(
                f"demand scale must be in (0, 1], got {self.scale}"
            )
        for label, value in (
            ("ramp", self.ramp_share_per_h),
            ("drain", self.drain_share_per_h),
        ):
            if value is not None and value <= 0.0:
                raise ValueError(
                    f"{label} share per hour must be positive, got {value}"
                )


@dataclass(frozen=True)
class RoutingSpec:
    """The traffic-splitting policy and its forecast knobs.

    ``lookahead_h`` overrides a forecast-aware router's horizon;
    ``efficiency_weighted=False`` downgrades the carbon-greedy /
    forecast-aware rankings to intensity-only (the heterogeneity
    ablation; an error on routers that never carry the energy term).
    """

    router: str = "static"
    lookahead_h: float | None = None
    forecaster: str = "diurnal"
    efficiency_weighted: bool = True

    def __post_init__(self) -> None:
        _choice("router", self.router, ROUTER_NAMES)
        _choice("forecaster", self.forecaster, FORECASTER_NAMES)
        if self.lookahead_h is not None and self.lookahead_h < 0.0:
            raise ValueError(
                f"lookahead must be non-negative, got {self.lookahead_h}"
            )
        if not self.efficiency_weighted and self.router not in EFFICIENCY_ROUTERS:
            raise ValueError(
                f"router {self.router!r} has no intensity-only variant "
                f"(efficiency_weighted=False applies to: "
                f"{', '.join(EFFICIENCY_ROUTERS)})"
            )


@dataclass(frozen=True)
class GatingSpec:
    """Elastic GPU capacity: whether (and how) idle power follows traffic.

    ``mode=None`` keeps every GPU always on.  ``wake_energy_j`` overrides
    the per-device profile wake energies with one fleet-wide scalar
    (``None`` = each woken device owes its own profile's figure).
    """

    mode: str | None = None
    wake_energy_j: float | None = None

    def __post_init__(self) -> None:
        if self.mode is not None:
            _choice("gating mode", self.mode, GATING_MODES)
        if self.wake_energy_j is not None:
            if self.mode is None:
                raise ValueError(
                    "wake_energy_j without a gating mode has no effect; "
                    f"set mode to one of: {', '.join(GATING_MODES)}"
                )
            if self.wake_energy_j < 0:
                raise ValueError(
                    f"wake energy must be non-negative, got {self.wake_energy_j}"
                )


@dataclass(frozen=True)
class BatchSpec:
    """Deferrable batch work riding along with the interactive traffic.

    ``jobs_per_h=None`` (the default) means no batch class — the scenario
    is the pure interactive pipeline, bit-for-bit.  Setting it enables the
    temporal scheduler; every other field refines the workload and
    inherits the :class:`~repro.shifting.BatchJobClass` default when left
    ``None`` (so an all-default ``[batch]`` block with only ``jobs_per_h``
    is a valid minimal scenario).
    """

    jobs_per_h: float | None = None
    requests_per_job: float | None = None
    deadline_h: float | None = None
    arrival: str | None = None
    preemptible: bool | None = None
    accuracy_floor_pct: float | None = None
    defer: bool | None = None

    def __post_init__(self) -> None:
        if self.jobs_per_h is None:
            set_fields = [
                name
                for name in (
                    "requests_per_job",
                    "deadline_h",
                    "arrival",
                    "preemptible",
                    "accuracy_floor_pct",
                    "defer",
                )
                if getattr(self, name) is not None
            ]
            if set_fields:
                raise ValueError(
                    f"batch {', '.join(set_fields)} without jobs_per_h has "
                    "no effect; set batch.jobs_per_h to enable the batch "
                    "workload"
                )
            return
        if self.jobs_per_h <= 0.0:
            raise ValueError(
                f"batch jobs per hour must be positive, got {self.jobs_per_h}"
            )
        if self.requests_per_job is not None and self.requests_per_job <= 0.0:
            raise ValueError(
                f"requests per job must be positive, got {self.requests_per_job}"
            )
        if self.deadline_h is not None and self.deadline_h <= 0.0:
            raise ValueError(
                f"batch deadline must be positive, got {self.deadline_h}"
            )
        if self.arrival is not None:
            _choice("arrival profile", self.arrival, ARRIVAL_PROFILES)
        if self.accuracy_floor_pct is not None and not (
            0.0 < self.accuracy_floor_pct <= 100.0
        ):
            raise ValueError(
                f"accuracy floor must be in (0, 100] %, got "
                f"{self.accuracy_floor_pct}"
            )

    @property
    def enabled(self) -> bool:
        return self.jobs_per_h is not None


@dataclass(frozen=True)
class ScenarioSpec:
    """The declarative front door: everything one fleet experiment needs.

    Attributes
    ----------
    regions:
        The fleet topology, in fleet order (at least one region).
    application, scheme:
        The served application and the fleet-default optimization scheme
        (regions may override their scheme individually).
    fidelity, seed:
        Simulation fidelity profile and the root RNG seed (region ``i``
        derives ``seed + i``, so reruns of an equal spec are bit-for-bit
        reproducible end to end).
    n_gpus, lambda_weight, duration_h:
        Default per-region cluster size, the Eq. 3 carbon-accuracy
        weight, and the simulated horizon (``None`` = the shortest
        regional trace).
    net_latency_ms:
        Override every region's registry network latency (the
        paper-faithful fig16 path pins 0.0); ``None`` keeps registry
        values.
    routing, demand, gating, batch:
        The composable sub-specs (``batch`` adds a deferrable workload
        the temporal scheduler shifts into clean epochs).
    shared_cache:
        Pool analytic evaluator caches across identical-hardware regions
        (results unchanged, warm-up cost drops); ``False`` opts out.
    parallel_regions:
        Step each epoch's regions through a thread pool of this many
        workers (``None``/1 = the serial driver; results identical).
    name:
        Optional human label (report titles); not part of the physics.
    """

    regions: tuple[RegionSpec, ...]
    application: str = "classification"
    scheme: str = "clover"
    fidelity: str = "default"
    seed: int = 0
    n_gpus: int = PAPER_N_GPUS
    lambda_weight: float = PAPER_LAMBDA
    duration_h: float | None = None
    net_latency_ms: float | None = None
    routing: RoutingSpec = field(default_factory=RoutingSpec)
    demand: DemandSpec = field(default_factory=DemandSpec)
    gating: GatingSpec = field(default_factory=GatingSpec)
    batch: BatchSpec = field(default_factory=BatchSpec)
    shared_cache: bool = True
    parallel_regions: int | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.regions, list):
            object.__setattr__(self, "regions", tuple(self.regions))
        if not self.regions:
            raise ValueError("a scenario needs at least one region")
        if not all(isinstance(r, RegionSpec) for r in self.regions):
            raise ValueError("regions must be RegionSpec entries")
        seen = set()
        for r in self.regions:
            if r.name in seen:
                raise ValueError(f"duplicate region {r.name!r} in scenario")
            seen.add(r.name)
        _choice("application", self.application, APPLICATION_NAMES)
        _choice("scheme", self.scheme, SCHEME_NAMES)
        _choice("fidelity", self.fidelity, FIDELITY_NAMES)
        if self.n_gpus <= 0:
            raise ValueError(f"n_gpus must be positive, got {self.n_gpus}")
        if self.duration_h is not None and self.duration_h <= 0.0:
            raise ValueError(
                f"duration must be positive, got {self.duration_h}"
            )
        if self.net_latency_ms is not None and self.net_latency_ms < 0.0:
            raise ValueError(
                f"network latency must be non-negative, got {self.net_latency_ms}"
            )
        if self.parallel_regions is not None and self.parallel_regions < 1:
            raise ValueError(
                f"parallel region workers must be >= 1, got {self.parallel_regions}"
            )
        # The ramp/drain migration limits bind constant-demand fleets
        # too, but the demand scale only sizes a demand *model*.
        if self.demand.kind is None and self.demand.scale != DemandSpec.scale:
            raise ValueError(
                "demand scale has no effect without a demand kind; set "
                f"kind to one of: {', '.join(DEMAND_KINDS)}"
            )

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #

    @property
    def region_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.regions)

    @property
    def region_schemes(self) -> tuple[str, ...]:
        """Each region's effective scheme (override or the fleet default)."""
        return tuple(r.scheme or self.scheme for r in self.regions)

    @property
    def is_mixed_scheme(self) -> bool:
        return len(set(self.region_schemes)) > 1

    @property
    def label(self) -> str:
        """A short human identifier for tables and log lines."""
        if self.name:
            return self.name
        schemes = list(dict.fromkeys(self.region_schemes))
        scheme = schemes[0] if len(schemes) == 1 else "+".join(schemes)
        return f"{self.routing.router}/{scheme}x{len(self.regions)}"

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """Clone with a different root seed (the CLI ``--seed`` thread)."""
        return replace(self, seed=seed)

    def with_fidelity(self, fidelity: str) -> "ScenarioSpec":
        """Clone at a different fidelity (the CLI ``--fidelity`` thread)."""
        return replace(self, fidelity=fidelity)

    def get(self, path: str):
        """Read the field a dotted :meth:`override` path addresses.

        The read counterpart of :meth:`override` — one place owns the
        path grammar, so sweep tables and overrides cannot drift.

        >>> spec = ScenarioSpec(regions=(RegionSpec(name="us-ciso"),))
        >>> spec.get("routing.router")
        'static'
        """
        head, _, rest = path.partition(".")
        self._check_path(head, rest)
        value = getattr(self, head)
        return getattr(value, rest) if rest else value

    def _check_path(self, head: str, rest: str) -> None:
        valid = {f.name for f in fields(self)}
        if head not in valid:
            raise ValueError(
                f"unknown scenario field {head!r}; valid: "
                f"{', '.join(sorted(valid))}"
            )
        if not rest:
            if head in ("routing", "demand", "gating", "batch", "regions"):
                raise ValueError(
                    f"field {head!r} is a sub-spec; address one of its "
                    f"fields (e.g. {head}.<field>) or pass a built value "
                    "via dataclasses.replace"
                )
            return
        sub_valid = {f.name for f in fields(getattr(self, head))}
        if rest not in sub_valid:
            raise ValueError(
                f"unknown field {rest!r} in {head!r}; valid: "
                f"{', '.join(sorted(sub_valid))}"
            )

    def override(self, path: str, value) -> "ScenarioSpec":
        """Clone with one dotted-path field replaced.

        ``path`` is a top-level field (``"seed"``) or a sub-spec field
        (``"routing.router"``, ``"gating.mode"``, ``"demand.kind"``).
        This is the primitive the sweep expander grids over.

        >>> spec = ScenarioSpec(regions=(RegionSpec(name="us-ciso"),))
        >>> spec.override("routing.router", "carbon-greedy").routing.router
        'carbon-greedy'
        >>> spec.override("seed", 3).seed
        3
        """
        head, _, rest = path.partition(".")
        self._check_path(head, rest)
        if not rest:
            return replace(self, **{head: value})
        sub = getattr(self, head)
        return replace(self, **{head: replace(sub, **{rest: value})})
