"""ScenarioSpec serialization: dict <-> TOML/JSON, strict both ways.

A spec on disk is the unit of sharing and sweeping: ``repro run
scenario.toml`` executes it, ``repro sweep`` grids over it, CI smoke-runs
the checked-in examples.  Round-tripping is exact — ``from_toml(to_toml(
spec)) == spec`` for every representable spec — and *strict*: unknown keys
are rejected with the section and the valid choices in the message, so a
typo'd field fails loudly instead of silently running the default.

``None``-valued fields are omitted on write and default on read (TOML has
no null), which is what keeps omission and explicit-default equal.  The
writer is a minimal TOML emitter for exactly this schema (the container
ships no ``tomli_w``); reading uses the stdlib ``tomllib``.

File layout::

    name = "mixed-scheme"        # top-level ScenarioSpec scalars
    scheme = "clover"
    n_gpus = 2

    [[regions]]                  # one table per region, fleet order
    name = "nordic-hydro"
    scheme = "co2opt"            # optional per-region override

    [routing]
    router = "carbon-greedy"

    [demand]
    kind = "diurnal"

    [gating]
    mode = "reactive"

    [batch]
    jobs_per_h = 120.0

    [sweep]                      # optional: `repro sweep` input
    workers = 2
    [sweep.axes]
    "routing.router" = ["static", "carbon-greedy"]
"""

from __future__ import annotations

import json
from dataclasses import field as dc_field, fields, make_dataclass
from pathlib import Path

from repro.scenarios.spec import (
    BatchSpec,
    DemandSpec,
    GatingSpec,
    RegionSpec,
    RoutingSpec,
    ScenarioSpec,
)

__all__ = [
    "spec_to_dict",
    "spec_from_dict",
    "spec_to_toml",
    "spec_from_toml",
    "spec_to_json",
    "spec_from_json",
    "load_scenario_file",
    "SweepConfig",
]

#: ScenarioSpec fields holding nested sub-specs (emitted as TOML tables).
_SUB_SPECS = {
    "routing": RoutingSpec,
    "demand": DemandSpec,
    "gating": GatingSpec,
    "batch": BatchSpec,
}

#: Fields that must be floats even when the file spells them as ints
#: (TOML `duration_h = 24` parses as an integer).
_FLOAT_FIELDS = {
    "lambda_weight",
    "duration_h",
    "net_latency_ms",
    "scale",
    "ramp_share_per_h",
    "drain_share_per_h",
    "lookahead_h",
    "wake_energy_j",
    "jobs_per_h",
    "requests_per_job",
    "deadline_h",
    "accuracy_floor_pct",
}


def _plain(value):
    """A dataclass field value as plain JSON/TOML data (tuples -> lists)."""
    if isinstance(value, tuple):
        return list(value)
    return value


def _flat_dict(obj) -> dict:
    """One dataclass level as a dict, ``None`` fields omitted."""
    out = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if value is None:
            continue
        out[f.name] = _plain(value)
    return out


def spec_to_dict(spec: ScenarioSpec) -> dict:
    """The spec as nested plain data (lists, dicts, scalars only)."""
    out = {}
    for f in fields(spec):
        value = getattr(spec, f.name)
        if f.name == "regions":
            out["regions"] = [_flat_dict(r) for r in value]
        elif f.name in _SUB_SPECS:
            flat = _flat_dict(value)
            if flat:
                out[f.name] = flat
        elif f.name == "name" and value == "":
            continue  # an unlabeled scenario round-trips through omission
        elif value is not None:
            out[f.name] = _plain(value)
    return out


def _build(cls, data: dict, section: str):
    """Construct one dataclass level from ``data``, rejecting unknowns."""
    if not isinstance(data, dict):
        raise ValueError(
            f"{section} must be a table/object, got {type(data).__name__}"
        )
    valid = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ValueError(
            f"unknown key(s) {', '.join(repr(k) for k in unknown)} in "
            f"{section}; valid: {', '.join(sorted(valid))}"
        )
    kwargs = {}
    for key, value in data.items():
        if key in _FLOAT_FIELDS and isinstance(value, int):
            value = float(value)
        if isinstance(value, list) and key != "regions":
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)


def spec_from_dict(data: dict) -> ScenarioSpec:
    """Build (and validate) a :class:`ScenarioSpec` from nested plain data.

    Unknown keys anywhere raise a :class:`ValueError` naming the section
    and the valid keys; field-level validation (unknown regions, routers,
    schemes, ...) happens in the spec constructors and carries the valid
    registry entries in the message.
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"a scenario must be a table/object, got {type(data).__name__}"
        )
    data = dict(data)
    # Reject unknown top-level keys against the *full* field set before
    # the sections are popped, so a typo'd section name ([routin]) gets
    # 'routing' in its valid list.
    valid_top = {f.name for f in fields(ScenarioSpec)}
    unknown_top = sorted(set(data) - valid_top)
    if unknown_top:
        raise ValueError(
            f"unknown key(s) {', '.join(repr(k) for k in unknown_top)} in "
            f"the scenario; valid: {', '.join(sorted(valid_top))}"
        )
    kwargs = {}
    regions = data.pop("regions", None)
    if regions is None:
        raise ValueError(
            "a scenario needs a [[regions]] list (at least one region table "
            "with a 'name')"
        )
    if not isinstance(regions, list):
        raise ValueError("[[regions]] must be a list of region tables")
    kwargs["regions"] = tuple(
        _build(RegionSpec, entry, f"[[regions]] entry {i}")
        for i, entry in enumerate(regions)
    )
    for name, cls in _SUB_SPECS.items():
        if name in data:
            kwargs[name] = _build(cls, data.pop(name), f"[{name}]")
    top = _build(_Top, data, "the scenario")
    for key in data:
        kwargs[key] = getattr(top, key)
    return ScenarioSpec(**kwargs)


# A lightweight mirror of ScenarioSpec's scalar (non-nested) fields, so
# _build() can reuse the same unknown-key/coercion machinery at the top
# level without re-validating defaults for keys the file omitted.
_Top = make_dataclass(
    "_Top",
    [
        (f.name, f.type, dc_field(default=None))
        for f in fields(ScenarioSpec)
        if f.name not in {"regions", *_SUB_SPECS}
    ],
)

# ---------------------------------------------------------------------- #
# TOML
# ---------------------------------------------------------------------- #


#: TOML basic-string short escapes for the control characters that have
#: them; everything else below 0x20 (and DEL) uses \\uXXXX.
_TOML_ESCAPES = {
    "\\": "\\\\", '"': '\\"', "\b": "\\b", "\t": "\\t",
    "\n": "\\n", "\f": "\\f", "\r": "\\r",
}


def _toml_string(value: str) -> str:
    out = []
    for ch in value:
        if ch in _TOML_ESCAPES:
            out.append(_TOML_ESCAPES[ch])
        elif ord(ch) < 0x20 or ord(ch) == 0x7F:
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return '"' + "".join(out) + '"'


def _toml_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return _toml_string(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise TypeError(f"cannot TOML-encode {type(value).__name__}: {value!r}")


def _toml_table(data: dict) -> list[str]:
    return [f"{key} = {_toml_value(value)}" for key, value in data.items()]


def spec_to_toml(spec: ScenarioSpec) -> str:
    """The spec as a TOML document (exact round-trip via ``spec_from_toml``)."""
    data = spec_to_dict(spec)
    lines = _toml_table(
        {k: v for k, v in data.items() if not isinstance(v, (dict, list))}
    )
    for region in data["regions"]:
        lines += ["", "[[regions]]", *_toml_table(region)]
    for name in _SUB_SPECS:
        table = data.get(name)
        if table:
            lines += ["", f"[{name}]", *_toml_table(table)]
    return "\n".join(lines) + "\n"


def _loads_toml(text: str) -> dict:
    """Parse TOML via stdlib ``tomllib`` (3.11+) or the ``tomli`` backport.

    The project supports Python 3.10, where ``tomllib`` does not exist;
    ``pyproject.toml`` declares ``tomli`` as a conditional dependency
    there, so one of the two is always importable.
    """
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10
        import tomli as tomllib
    return tomllib.loads(text)


def spec_from_toml(text: str) -> ScenarioSpec:
    """Parse a TOML document into a validated :class:`ScenarioSpec`."""
    return spec_from_dict(_loads_toml(text))


# ---------------------------------------------------------------------- #
# JSON
# ---------------------------------------------------------------------- #


def spec_to_json(spec: ScenarioSpec, indent: int = 2) -> str:
    return json.dumps(spec_to_dict(spec), indent=indent) + "\n"


def spec_from_json(text: str) -> ScenarioSpec:
    return spec_from_dict(json.loads(text))


# ---------------------------------------------------------------------- #
# files (scenario + optional sweep section)
# ---------------------------------------------------------------------- #


class SweepConfig:
    """The optional ``[sweep]`` section of a scenario file.

    ``axes`` maps dotted spec paths (``"routing.router"``, ``"seed"``) to
    value lists; ``workers`` is the process-pool width for
    :func:`repro.scenarios.sweep.run_sweep` (``None`` = serial).
    """

    def __init__(self, axes: dict[str, list] | None = None,
                 workers: int | None = None) -> None:
        self.axes = dict(axes or {})
        self.workers = workers
        if self.workers is not None and self.workers < 1:
            raise ValueError(
                f"sweep workers must be >= 1, got {self.workers}"
            )
        for path, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"sweep axis {path!r} needs a non-empty value list, "
                    f"got {values!r}"
                )

    def __repr__(self) -> str:  # debugging/table titles
        return f"SweepConfig(axes={self.axes!r}, workers={self.workers!r})"


def _sweep_from_dict(data: dict) -> SweepConfig:
    valid = {"axes", "workers"}
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ValueError(
            f"unknown key(s) {', '.join(repr(k) for k in unknown)} in "
            f"[sweep]; valid: {', '.join(sorted(valid))}"
        )
    return SweepConfig(
        axes=data.get("axes"), workers=data.get("workers")
    )


def load_scenario_file(path: str | Path) -> tuple[ScenarioSpec, SweepConfig | None]:
    """Load a ``.toml``/``.json`` scenario file (plus its sweep section).

    Returns ``(spec, sweep)`` where ``sweep`` is ``None`` when the file
    declares no ``[sweep]`` section.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        data = json.loads(text)
    elif path.suffix.lower() == ".toml":
        data = _loads_toml(text)
    else:
        raise ValueError(
            f"scenario files are .toml or .json, got {path.name!r}"
        )
    if not isinstance(data, dict):
        raise ValueError(f"{path}: a scenario must be a table/object")
    data = dict(data)
    sweep = None
    if "sweep" in data:
        sweep = _sweep_from_dict(data.pop("sweep"))
    return spec_from_dict(data), sweep
