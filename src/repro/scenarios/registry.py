"""The experiment registry: named entries behind ``repro run <name>``.

Experiments used to live in one hand-maintained dict at the bottom of
``analysis/experiments.py``; every new experiment meant editing the dict,
the CLI help and the docs index in lockstep.  The :func:`experiment`
decorator replaces that: a function registers itself (name, description,
whether it consumes the shared runner), the CLI and docs render from the
registry, and drift is impossible by construction.

An experiment is a callable ``(runner, fidelity, seed) -> result`` whose
result exposes ``table()``; modern entries build
:class:`~repro.scenarios.spec.ScenarioSpec` values and execute them
through ``runner.run_scenario`` (memoized), so everything an experiment
compares is also expressible as a standalone scenario file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Experiment", "experiment", "experiment_registry", "get_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One registry entry: the callable plus its CLI-facing metadata."""

    name: str
    fn: Callable
    description: str = ""
    #: Whether ``fn`` takes the shared ``(runner, fidelity, seed)``
    #: arguments; static experiments (pure table generators) ignore them.
    takes_runner: bool = True

    def __call__(self, runner, fidelity: str, seed: int):
        if self.takes_runner:
            return self.fn(runner, fidelity, seed)
        return self.fn()


_REGISTRY: dict[str, Experiment] = {}


def experiment(
    name: str, description: str = "", takes_runner: bool = True
) -> Callable:
    """Register the decorated function as experiment ``name``.

    >>> @experiment("toy-doctest", "a registry doctest entry",
    ...             takes_runner=False)
    ... def _toy():
    ...     return "result"
    >>> get_experiment("toy-doctest")(None, "smoke", 0)
    'result'
    >>> _ = _REGISTRY.pop("toy-doctest")  # keep the real registry clean
    """
    if not name:
        raise ValueError("an experiment needs a name")

    def register(fn: Callable) -> Callable:
        if name in _REGISTRY and _REGISTRY[name].fn is not fn:
            raise ValueError(f"experiment {name!r} is already registered")
        desc = description
        if not desc and fn.__doc__:
            lines = fn.__doc__.strip().splitlines()
            desc = lines[0] if lines else ""
        _REGISTRY[name] = Experiment(
            name=name, fn=fn, description=desc, takes_runner=takes_runner
        )
        return fn

    return register


def experiment_registry() -> dict[str, Experiment]:
    """A snapshot of the registry (name -> entry), insertion order."""
    return dict(_REGISTRY)


def get_experiment(name: str) -> Experiment:
    """Look an experiment up by name, listing the registry on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        valid = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {name!r}; valid: {valid}"
        ) from None
