"""repro.scenarios — the declarative experiment front door.

One composable, serializable :class:`ScenarioSpec` describes every fleet
experiment: topology, per-region devices **and schemes**, demand, routing,
gating, fidelity, seed.  A :class:`Scenario` validates a spec, builds the
:class:`~repro.fleet.FleetCoordinator` and runs it; :func:`expand` /
:func:`run_sweep` grid over any spec field with optional process-pool
parallelism; the serializers round-trip specs to TOML/JSON exactly
(``repro run scenario.toml``, ``repro sweep``); the :func:`experiment`
registry is where named experiments live.

Quickstart::

    from repro.scenarios import RegionSpec, RoutingSpec, Scenario, ScenarioSpec

    spec = ScenarioSpec(
        regions=(
            RegionSpec(name="nordic-hydro", scheme="co2opt"),  # clean grid
            RegionSpec(name="us-ciso"),                         # dirty grid
        ),
        scheme="clover", n_gpus=2, duration_h=24.0,
        routing=RoutingSpec(router="carbon-greedy"),
    )
    result = Scenario(spec).run()
    print(result.scheme_by_region, result.total_carbon_g)
"""

from repro.scenarios.registry import (
    Experiment,
    experiment,
    experiment_registry,
    get_experiment,
)
from repro.scenarios.scenario import Scenario, build_coordinator, execute_spec
from repro.scenarios.serialize import (
    SweepConfig,
    load_scenario_file,
    spec_from_dict,
    spec_from_json,
    spec_from_toml,
    spec_to_dict,
    spec_to_json,
    spec_to_toml,
)
from repro.scenarios.spec import (
    DEMAND_KINDS,
    FIDELITY_NAMES,
    BatchSpec,
    DemandSpec,
    GatingSpec,
    RegionSpec,
    RoutingSpec,
    ScenarioSpec,
)
from repro.scenarios.sweep import expand, run_sweep, sweep

__all__ = [
    "ScenarioSpec",
    "RegionSpec",
    "DemandSpec",
    "RoutingSpec",
    "GatingSpec",
    "BatchSpec",
    "FIDELITY_NAMES",
    "DEMAND_KINDS",
    "Scenario",
    "build_coordinator",
    "execute_spec",
    "expand",
    "run_sweep",
    "sweep",
    "spec_to_dict",
    "spec_from_dict",
    "spec_to_toml",
    "spec_from_toml",
    "spec_to_json",
    "spec_from_json",
    "load_scenario_file",
    "SweepConfig",
    "Experiment",
    "experiment",
    "experiment_registry",
    "get_experiment",
]
