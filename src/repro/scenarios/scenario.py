"""Scenario: validate a ScenarioSpec, assemble the fleet, run it.

The one place spec fields turn into built objects.  Everything the legacy
``ExperimentRunner.run_fleet`` used to assemble inline — region registry
lookups, device pools, router construction (with the intensity-only
ablation), gating policies, per-region schemes — happens here, through the
same factory calls, so a spec converted from a legacy ``FleetSpec`` builds
the *identical* coordinator and reproduces its results bit for bit (golden
tested).

>>> from repro.scenarios import RegionSpec, ScenarioSpec
>>> spec = ScenarioSpec(
...     regions=(RegionSpec(name="us-ciso"),), scheme="base",
...     fidelity="smoke", n_gpus=2, duration_h=2.0,
... )
>>> result = Scenario(spec).run()
>>> result.total_requests > 0 and result.total_carbon_g > 0
True
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.service import FidelityProfile
from repro.fleet import (
    FleetCoordinator,
    FleetResult,
    make_gating_policy,
    make_router,
    region_by_name,
)
from repro.scenarios.spec import ScenarioSpec
from repro.shifting import BatchJobClass

__all__ = ["Scenario", "build_coordinator", "execute_spec"]


def build_coordinator(spec: ScenarioSpec) -> FleetCoordinator:
    """Assemble the :class:`FleetCoordinator` a spec describes.

    Pure construction — no simulation runs.  Raises ``KeyError`` /
    ``ValueError`` with registry listings on anything the spec-level
    validation could not see (e.g. a device tuple whose length disagrees
    with the region's GPU count).
    """
    regions = tuple(
        region_by_name(
            r.name,
            n_gpus=r.n_gpus if r.n_gpus is not None else spec.n_gpus,
            devices=r.devices,
        )
        for r in spec.regions
    )
    if spec.net_latency_ms is not None:
        regions = tuple(
            replace(r, net_latency_ms=spec.net_latency_ms) for r in regions
        )

    gating = None
    if spec.gating.mode is not None:
        overrides = {}
        if spec.gating.wake_energy_j is not None:
            overrides["wake_energy_j"] = spec.gating.wake_energy_j
        gating = make_gating_policy(spec.gating.mode, **overrides)

    batch = None
    if spec.batch.enabled:
        overrides = {
            name: getattr(spec.batch, name)
            for name in (
                "requests_per_job",
                "deadline_h",
                "arrival",
                "preemptible",
                "accuracy_floor_pct",
                "defer",
            )
            if getattr(spec.batch, name) is not None
        }
        batch = BatchJobClass(jobs_per_h=spec.batch.jobs_per_h, **overrides)

    router = spec.routing.router
    if not spec.routing.efficiency_weighted:
        # Spec validation already restricted this to the rankings that
        # carry the energy term.
        router = make_router(router, efficiency_weighted=False)

    schemes = spec.region_schemes
    scheme = schemes[0] if len(set(schemes)) == 1 else schemes

    return FleetCoordinator.create(
        regions,
        application=spec.application,
        scheme=scheme,
        router=router,
        lambda_weight=spec.lambda_weight,
        fidelity=FidelityProfile.by_name(spec.fidelity),
        seed=spec.seed,
        demand=spec.demand.kind,
        demand_scale=spec.demand.scale,
        ramp_share_per_h=spec.demand.ramp_share_per_h,
        drain_share_per_h=spec.demand.drain_share_per_h,
        lookahead_h=spec.routing.lookahead_h,
        forecaster=spec.routing.forecaster,
        gating=gating,
        batch=batch,
        share_caches=spec.shared_cache,
    )


class Scenario:
    """One runnable experiment: a validated spec plus its executor.

    The spec is validated at construction (its dataclasses validate
    themselves); :meth:`build` assembles the coordinator, :meth:`run`
    executes it — honoring the spec's duration and parallel-region
    driver — and returns the :class:`~repro.fleet.FleetResult`.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(
                f"Scenario wants a ScenarioSpec, got {type(spec).__name__}"
            )
        self.spec = spec

    def build(self) -> FleetCoordinator:
        """The fleet coordinator this scenario describes (not yet run)."""
        return build_coordinator(self.spec)

    def run(self) -> FleetResult:
        """Build and execute the scenario, returning the fleet result.

        Deterministic given the spec: an equal spec reproduces an equal
        result bit for bit (region ``i`` derives seed ``spec.seed + i``).
        """
        return self.build().run(
            duration_h=self.spec.duration_h,
            parallel_regions=self.spec.parallel_regions,
        )

    def __repr__(self) -> str:
        return f"Scenario({self.spec.label!r})"


def execute_spec(spec: ScenarioSpec) -> FleetResult:
    """Module-level worker: run one spec (picklable for process pools)."""
    return Scenario(spec).run()
