"""Command-line interface: ``clover-repro`` / ``python -m repro``.

Subcommands
-----------
``list``
    Show the available experiments (tables/figures of the paper).
``run``
    Run experiments **or scenario files** and print their ASCII tables.
    An argument naming a registry experiment (``fig9``, ``fleet``, ...)
    runs that experiment; an argument ending in ``.toml``/``.json`` is
    loaded as a declarative :class:`~repro.scenarios.spec.ScenarioSpec`
    (see ``examples/scenarios/``) and executed — ``--fidelity`` and
    ``--seed`` override the file's values when given, so one checked-in
    scenario serves smoke CI and full-fidelity studies alike.
``sweep``
    Grid-expand a scenario file over ``--axis`` fields (or its ``[sweep]``
    section) and run the grid, optionally on a process pool
    (``--workers``), printing one comparison row per scenario.
``export``
    Run experiments and write their tables to CSV/JSON files.
``report``
    Run every experiment and write one Markdown reproduction report.
``demo``
    A short end-to-end Clover run with a summary report.
``fleet``
    Legacy multi-region front door.  Every flag combination builds the
    same :class:`ScenarioSpec` that ``repro run <file>`` would load
    (tested field-for-field) and runs it through the scenario layer —
    the flags keep working, the execution path is one.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.analysis.experiments import EXPERIMENT_REGISTRY
from repro.analysis.runner import ExperimentRunner
from repro.analysis.reporting import render

__all__ = ["main", "build_parser", "fleet_args_to_spec"]

#: Suffixes `run`/`sweep` treat as scenario files rather than experiments.
SCENARIO_SUFFIXES = (".toml", ".json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="clover-repro",
        description=(
            "Reproduction of Clover (SC '23): carbon-aware ML inference "
            "serving with mixed-quality models and MIG GPU partitioning."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser(
        "run", help="run experiments or scenario files and print tables"
    )
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT|SCENARIO.toml",
        help=(
            f"one of: {', '.join(sorted(EXPERIMENT_REGISTRY))}, 'all', or "
            "a path to a .toml/.json scenario file"
        ),
    )
    run.add_argument(
        "--fidelity",
        default=None,
        choices=("smoke", "default", "paper"),
        help=(
            "simulation fidelity (default: 'default' for experiments; a "
            "scenario file's own fidelity unless overridden here)"
        ),
    )
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "root RNG seed (default: 0 for experiments; a scenario "
            "file's own seed unless overridden here)"
        ),
    )

    swp = sub.add_parser(
        "sweep", help="grid-expand a scenario file and run the grid"
    )
    swp.add_argument("scenario", metavar="SCENARIO.toml")
    swp.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="PATH=V1,V2",
        help=(
            "sweep axis: a dotted spec path and comma-separated values "
            "(e.g. --axis routing.router=static,carbon-greedy --axis "
            "seed=0,1); merges with (and wins over) the file's "
            "[sweep.axes] section"
        ),
    )
    swp.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "process-pool width for parallel scenario execution "
            "(default: the file's [sweep] workers, else serial)"
        ),
    )
    swp.add_argument(
        "--fidelity", default=None, choices=("smoke", "default", "paper")
    )
    swp.add_argument("--seed", type=int, default=None)

    export = sub.add_parser(
        "export", help="run experiments and write CSV/JSON tables"
    )
    export.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    export.add_argument("--out", default=".", help="output directory")
    export.add_argument(
        "--format", default="csv", choices=("csv", "json"), dest="fmt"
    )
    export.add_argument(
        "--fidelity", default="default", choices=("smoke", "default", "paper")
    )
    export.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report", help="write a full Markdown reproduction report"
    )
    report.add_argument("--out", default="REPORT.md")
    report.add_argument(
        "--fidelity", default="default", choices=("smoke", "default", "paper")
    )
    report.add_argument("--seed", type=int, default=0)

    demo = sub.add_parser("demo", help="short end-to-end Clover run")
    demo.add_argument("--application", default="classification")
    demo.add_argument("--scheme", default="clover")
    demo.add_argument("--hours", type=float, default=12.0)
    demo.add_argument("--seed", type=int, default=0)

    from repro.fleet.regions import REGION_NAMES
    from repro.fleet.routing import ROUTER_NAMES

    fleet = sub.add_parser(
        "fleet", help="multi-region run with carbon-aware routing"
    )
    fleet.add_argument(
        "--regions",
        default="us-ciso,uk-eso,nordic-hydro",
        help=(
            "comma-separated region names "
            f"(valid: {', '.join(REGION_NAMES)}; default: %(default)s)"
        ),
    )
    fleet.add_argument(
        "--router",
        default="carbon-greedy",
        choices=ROUTER_NAMES,
        help="traffic-splitting policy (default: %(default)s)",
    )
    fleet.add_argument(
        "--duration-h",
        type=float,
        default=24.0,
        help="simulated hours (default: %(default)s)",
    )
    fleet.add_argument("--application", default="classification")
    fleet.add_argument("--scheme", default="clover")
    fleet.add_argument("--n-gpus", type=int, default=4, dest="n_gpus")
    from repro.gpu.profiles import DEVICE_NAMES

    fleet.add_argument(
        "--devices",
        default=None,
        help=(
            "GPU generations per region: one spec for every region "
            "('l4'), or comma-separated region=spec pairs "
            "('us-ciso=a100,uk-eso=l4'); a spec mixes devices within a "
            "region with '+' ('a100:1+l4:1', counts must total --n-gpus). "
            f"Known devices: {', '.join(DEVICE_NAMES)}.  Default: every "
            "GPU an a100"
        ),
    )
    fleet.add_argument(
        "--intensity-only",
        action="store_true",
        dest="intensity_only",
        help=(
            "rank regions on raw grid intensity instead of effective "
            "gCO2/request (the pre-heterogeneity carbon-greedy/"
            "forecast-aware behaviour; identical on all-a100 fleets)"
        ),
    )
    fleet.add_argument(
        "--fidelity", default="smoke", choices=("smoke", "default", "paper")
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--demand",
        default=None,
        choices=("constant", "diurnal"),
        help="geo-origin demand model (default: constant global rate)",
    )
    fleet.add_argument(
        "--ramp-share-per-h",
        type=float,
        default=None,
        dest="ramp_share_per_h",
        help="max share a region may gain per hour (default: unlimited)",
    )
    fleet.add_argument(
        "--drain-share-per-h",
        type=float,
        default=None,
        dest="drain_share_per_h",
        help="fraction of resident sessions drainable per hour "
        "(default: unlimited)",
    )
    fleet.add_argument(
        "--lookahead-h",
        type=float,
        default=None,
        dest="lookahead_h",
        help="forecast-aware router horizon in hours",
    )
    from repro.fleet.capacity import GATING_MODES

    fleet.add_argument(
        "--gating",
        default=None,
        choices=GATING_MODES,
        help=(
            "elastic GPU capacity: sleep GPUs when the routed rate falls "
            "(reactive wakes pay a latency window; forecast pre-wakes from "
            "the router's lookahead).  Default: every GPU always on"
        ),
    )
    fleet.add_argument(
        "--wake-energy-j",
        type=float,
        default=None,
        dest="wake_energy_j",
        help=(
            "fleet-wide per-wake transition energy for --gating (J), "
            "overriding the per-device profile defaults (a100 2000 J, "
            "h100 2500 J, l4 800 J).  Must fit under every device's "
            "static draw over the wake window"
        ),
    )
    from repro.shifting import ARRIVAL_PROFILES

    fleet.add_argument(
        "--batch",
        type=float,
        default=None,
        metavar="JOBS_PER_H",
        help=(
            "add a deferrable batch workload at this mean arrival rate "
            "(jobs/hour); the temporal scheduler shifts it into "
            "forecast-clean epochs.  Default: interactive traffic only"
        ),
    )
    fleet.add_argument(
        "--batch-requests-per-job",
        type=float,
        default=None,
        dest="batch_requests_per_job",
        help="inference requests per batch job (default: 1)",
    )
    fleet.add_argument(
        "--batch-deadline-h",
        type=float,
        default=None,
        dest="batch_deadline_h",
        help="hours each batch job may wait before it must complete "
        "(default: 8)",
    )
    fleet.add_argument(
        "--batch-arrival",
        default=None,
        choices=ARRIVAL_PROFILES,
        dest="batch_arrival",
        help="batch arrival profile (default: uniform)",
    )
    bench = sub.add_parser(
        "bench", help="run the pinned perf scenarios / check the baseline"
    )
    bench.add_argument(
        "--fidelity", default="default", choices=("smoke", "default")
    )
    bench.add_argument(
        "--out",
        default=None,
        help="write the suite result as a baseline JSON (BENCH_perf_core "
        "schema) to this path",
    )
    bench.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline JSON and exit 1 on any "
        "regression beyond --tolerance",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional ops/s or speedup drop for --check "
        "(default: 0.30)",
    )
    return parser


def _cmd_list() -> int:
    for name in sorted(EXPERIMENT_REGISTRY):
        print(name)
    return 0


def _is_scenario_path(name: str) -> bool:
    return name.lower().endswith(SCENARIO_SUFFIXES)


def _print_fleet_result(report, title: str) -> None:
    """The shared fleet report block (``run <scenario>`` and ``fleet``)."""
    from repro.analysis.reporting import format_table

    headers, rows = report.table()
    print(format_table(headers, rows, title=title))
    print()
    if any(r.devices is not None for r in report.regions):
        mixes = ", ".join(
            f"{r.name}={r.device_pool().describe()}" for r in report.regions
        )
        print(f"  devices:         {mixes}")
    if len(set(report.scheme_by_region.values())) > 1:
        schemes = ", ".join(
            f"{region}={scheme}"
            for region, scheme in report.scheme_by_region.items()
        )
        print(f"  schemes:         {schemes}")
    print(f"  duration:        {report.duration_h:.1f} h")
    print(f"  global rate:     {report.global_rate_per_s:.1f} req/s")
    print(f"  requests served: {report.total_requests:,.0f}")
    print(f"  energy:          {report.total_energy_j / 3.6e6:.2f} kWh")
    print(f"  carbon:          {report.total_carbon_g:,.0f} gCO2")
    print(f"  accuracy loss:   {report.accuracy_loss_pct:.2f}%")
    print(f"  SLA attainment:  {100 * report.sla_attainment:.1f}% (incl. network)")
    cache = report.cache_stats
    print(
        f"  evaluator cache: {cache.hits:,} hits / {cache.misses:,} misses "
        f"({100 * cache.hit_rate:.1f}% hit rate, "
        f"{cache.batched:,} batch-evaluated)"
    )
    if report.has_gating:
        print(
            f"  gating:          {report.gating_name} "
            f"({100 * report.mean_awake_fraction:.1f}% of GPUs awake on average)"
        )
    if report.has_demand:
        print(
            f"  user SLA:        {100 * report.user_sla_attainment:.1f}% "
            "(charged per origin-region pair)"
        )
        print(f"  mean net hop:    {report.mean_net_latency_ms:.1f} ms")
        print()
        headers, rows = report.origin_table()
        print(format_table(headers, rows, title="-- demand origins --"))
    if report.has_batch:
        attainment = report.batch_deadline_attainment
        shift = report.mean_shift_h
        print(
            f"  batch deadlines: "
            + (f"{100 * attainment:.1f}% on time"
               if attainment == attainment else "-")
            + f" ({report.batch_completed_requests:,.0f} served, "
            f"{report.batch_pending_requests:,.0f} queued)"
        )
        print(
            "  batch shift:     "
            + (f"{shift:.2f} h mean" if shift == shift else "-")
        )
        print()
        headers, rows = report.batch_table()
        print(format_table(headers, rows, title="-- batch workload --"))


def _load_spec_for_cli(path: str, fidelity: str | None, seed: int | None):
    """Load a scenario file and thread the CLI overrides into the spec.

    One ``--seed`` flows into the spec itself (region ``i`` derives
    ``seed + i`` from it), so repeated invocations of the same file with
    the same flags are bit-for-bit reproducible end to end.
    """
    from repro.scenarios import load_scenario_file

    spec, sweep_cfg = load_scenario_file(path)
    if fidelity is not None:
        spec = spec.with_fidelity(fidelity)
    if seed is not None:
        spec = spec.with_seed(seed)
    return spec, sweep_cfg


def _run_scenario_file(path: str, fidelity: str | None, seed: int | None) -> int:
    from repro.scenarios import Scenario

    try:
        spec, _ = _load_spec_for_cli(path, fidelity, seed)
        report = Scenario(spec).run()
    except FileNotFoundError:
        print(f"no such scenario file: {path}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        print(f"{path}: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    # Deliberately no wall-time in the title: two runs of one spec must
    # print byte-identical reports (the reproducibility contract; specs
    # opting into parallel_regions may see cache *diagnostics* attribute
    # warm-up work differently — simulation numbers never move).
    _print_fleet_result(
        report,
        title=(
            f"== scenario: {spec.label} ({spec.fidelity}, seed {spec.seed}) =="
        ),
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(EXPERIMENT_REGISTRY)
    scenario_paths = [n for n in names if _is_scenario_path(n)]
    experiment_names = [n for n in names if not _is_scenario_path(n)]
    unknown = [n for n in experiment_names if n not in EXPERIMENT_REGISTRY]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(EXPERIMENT_REGISTRY))}, "
            "or a .toml/.json scenario file path",
            file=sys.stderr,
        )
        return 2
    fidelity = args.fidelity or "default"
    seed = args.seed if args.seed is not None else 0
    runner = ExperimentRunner()
    for name in experiment_names:
        t0 = time.perf_counter()
        result = EXPERIMENT_REGISTRY[name](runner, fidelity, seed)
        dt = time.perf_counter() - t0
        print(render(result, title=f"== {name} ({fidelity}, {dt:.1f}s) =="))
        print()
    for path in scenario_paths:
        code = _run_scenario_file(path, args.fidelity, args.seed)
        if code != 0:
            return code
        print()
    return 0


def _parse_axis_value(token: str):
    """One sweep-axis value: int, float, bool or bare string."""
    lowered = token.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token.strip()


def _parse_axes(tokens: list[str]) -> dict[str, list]:
    axes: dict[str, list] = {}
    for token in tokens:
        path, sep, values = token.partition("=")
        if not sep or not path.strip() or not values.strip():
            raise ValueError(
                f"bad --axis {token!r} (want PATH=V1,V2,...)"
            )
        axes[path.strip()] = [
            _parse_axis_value(v) for v in values.split(",") if v.strip()
        ]
    return axes


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.scenarios import expand, run_sweep

    try:
        spec, sweep_cfg = _load_spec_for_cli(
            args.scenario, args.fidelity, args.seed
        )
        axes = dict(sweep_cfg.axes) if sweep_cfg is not None else {}
        axes.update(_parse_axes(args.axis))
        if not axes:
            raise ValueError(
                "nothing to sweep: give --axis PATH=V1,V2 or add a "
                "[sweep.axes] section to the scenario file"
            )
        workers = args.workers
        if workers is None and sweep_cfg is not None:
            workers = sweep_cfg.workers
        grid = expand(spec, axes)
        t0 = time.perf_counter()
        results = run_sweep(grid, workers=workers)
        dt = time.perf_counter() - t0
    except FileNotFoundError:
        print(f"no such scenario file: {args.scenario}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        print(
            f"{args.scenario}: {exc.args[0] if exc.args else exc}",
            file=sys.stderr,
        )
        return 2
    paths = list(axes)
    headers = (*paths, "Carbon(g)", "Energy(kWh)", "AccLoss%", "SLA%")
    rows = []
    for swept, result in zip(grid, results):
        cells = [str(swept.get(path)) for path in paths]
        sla = (
            result.user_sla_attainment
            if result.has_demand
            else result.sla_attainment
        )
        rows.append(
            (
                *cells,
                f"{result.total_carbon_g:,.0f}",
                f"{result.total_energy_j / 3.6e6:.2f}",
                f"{result.accuracy_loss_pct:.2f}",
                f"{100 * sla:.1f}",
            )
        )
    mode = f"{workers} workers" if workers and workers > 1 else "serial"
    print(
        format_table(
            headers,
            rows,
            title=(
                f"== sweep: {len(grid)} scenarios over "
                f"{', '.join(paths)} ({spec.fidelity}, {mode}, {dt:.1f}s) =="
            ),
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.export import table_to_csv, table_to_json

    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(EXPERIMENT_REGISTRY)
    unknown = [n for n in names if n not in EXPERIMENT_REGISTRY]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(EXPERIMENT_REGISTRY))}",
            file=sys.stderr,
        )
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    runner = ExperimentRunner()
    writer = table_to_csv if args.fmt == "csv" else table_to_json
    for name in names:
        result = EXPERIMENT_REGISTRY[name](runner, args.fidelity, args.seed)
        path = out_dir / f"{name}.{args.fmt}"
        writer(result, path)
        print(f"wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    generate_report(fidelity=args.fidelity, seed=args.seed, out_path=args.out)
    print(f"wrote {args.out}")
    return 0


def _parse_fleet_devices(arg: str | None, region_names: list[str]):
    """``--devices`` → per-region device assignment for RegionSpec.

    Returns a dict region -> (str | tuple) device spec; regions absent
    from the mapping keep the implicit all-A100 fleet.  A bare spec (no
    ``=``) applies to every region; within-region mixes join device
    counts with ``+`` (``a100:1+l4:1``).  ``region_names`` must already
    be lowercased (the registry is case-insensitive).
    """
    from repro.gpu.profiles import parse_region_devices

    if arg is None:
        return {}

    def one(spec: str):
        return parse_region_devices(spec.replace("+", ","))

    if "=" not in arg:
        spec = one(arg)
        return {region: spec for region in region_names}
    out = {}
    for token in arg.split(","):
        token = token.strip()
        if not token:
            continue
        region, sep, spec = token.partition("=")
        if not sep:
            raise ValueError(
                f"mixing bare and region=spec device tokens ({token!r}); "
                "either give one spec for all regions or map every region"
            )
        region = region.strip().lower()
        if region not in region_names:
            raise ValueError(
                f"--devices names unknown region {region!r} "
                f"(fleet: {', '.join(region_names)})"
            )
        out[region] = one(spec.strip())
    return out


def fleet_args_to_spec(args: argparse.Namespace):
    """The :class:`ScenarioSpec` a legacy ``fleet`` invocation describes.

    This *is* the shim: every historical flag maps onto one spec field,
    and the tests pin each mapping, so the legacy front door can never
    drift from the declarative one.
    """
    from repro.scenarios import (
        BatchSpec,
        DemandSpec,
        GatingSpec,
        RegionSpec,
        RoutingSpec,
        ScenarioSpec,
    )

    # The registry is case-insensitive; normalize once so --devices
    # region=spec tokens match however --regions was spelled.
    names = [n.strip().lower() for n in args.regions.split(",") if n.strip()]
    if not names:
        raise ValueError("no regions given")
    devices = _parse_fleet_devices(args.devices, names)
    return ScenarioSpec(
        regions=tuple(
            RegionSpec(name=n, devices=devices.get(n)) for n in names
        ),
        application=args.application,
        scheme=args.scheme,
        fidelity=args.fidelity,
        seed=args.seed,
        n_gpus=args.n_gpus,
        duration_h=args.duration_h,
        routing=RoutingSpec(
            router=args.router,
            lookahead_h=args.lookahead_h,
            efficiency_weighted=not args.intensity_only,
        ),
        demand=DemandSpec(
            kind=args.demand,
            ramp_share_per_h=args.ramp_share_per_h,
            drain_share_per_h=args.drain_share_per_h,
        ),
        gating=GatingSpec(
            mode=args.gating,
            wake_energy_j=(
                args.wake_energy_j if args.gating is not None else None
            ),
        ),
        batch=BatchSpec(
            jobs_per_h=args.batch,
            requests_per_job=(
                args.batch_requests_per_job if args.batch is not None else None
            ),
            deadline_h=(
                args.batch_deadline_h if args.batch is not None else None
            ),
            arrival=args.batch_arrival if args.batch is not None else None,
        ),
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.scenarios import Scenario

    try:
        spec = fleet_args_to_spec(args)
        t0 = time.perf_counter()
        report = Scenario(spec).run()
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    dt = time.perf_counter() - t0
    _print_fleet_result(
        report,
        title=(
            f"== fleet: {len(report.regions)} regions, "
            f"router={report.router_name}, "
            f"scheme={report.scheme_name} ({args.fidelity}, {dt:.1f}s) =="
        ),
    )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.service import CarbonAwareInferenceService

    service = CarbonAwareInferenceService.create(
        application=args.application,
        scheme=args.scheme,
        fidelity="smoke",
        seed=args.seed,
    )
    report = service.run(duration_h=args.hours)
    print(f"scheme={report.scheme_name} application={report.application}")
    print(f"  duration:          {report.duration_h:.1f} h")
    print(f"  requests served:   {report.total_requests:,.0f}")
    print(f"  energy:            {report.total_energy_j / 3.6e6:.2f} kWh")
    print(f"  carbon:            {report.total_carbon_g:,.0f} gCO2")
    print(f"  mean accuracy:     {report.mean_accuracy:.2f} "
          f"(loss {report.accuracy_loss_pct:.2f}%)")
    print(f"  p95 latency:       {report.p95_ms:.1f} ms "
          f"(SLA {report.sla_target_ms:.1f} ms)")
    print(f"  optimization time: {100 * report.optimization_fraction:.2f}% "
          f"({len(report.invocations)} invocations, "
          f"{report.total_evaluations} evaluations)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_TOLERANCE,
        check_regressions,
        load_baseline,
        run_suite,
        write_baseline,
    )

    baseline = None
    if args.check:
        try:
            baseline = load_baseline(args.check)
        except OSError:
            print(f"no such perf baseline: {args.check}", file=sys.stderr)
            return 2
        except (ValueError, json.JSONDecodeError) as exc:
            print(
                f"invalid perf baseline {args.check}: {exc}", file=sys.stderr
            )
            return 2
    suite = run_suite(args.fidelity)
    print(f"perf suite ({suite.fidelity} fidelity, calibration "
          f"{suite.calibration_ops_per_s:,.1f} kernel-ops/s)")
    header = f"  {'scenario':<16} {'ops/s':>12} {'vs scalar':>10}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for s in suite.scenarios:
        print(f"  {s.name:<16} {s.ops_per_s:>12,.1f} "
              f"{s.speedup_vs_scalar:>9.2f}x")
    if args.out:
        path = write_baseline(suite, args.out)
        print(f"wrote baseline to {path}")
    if baseline is not None:
        tolerance = (
            DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
        )
        failures = check_regressions(suite, baseline, tolerance)
        if failures:
            print(f"perf regressions vs {args.check}:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {100 * tolerance:.0f}%)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
