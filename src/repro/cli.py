"""Command-line interface: ``clover-repro`` / ``python -m repro``.

Subcommands
-----------
``list``
    Show the available experiments (tables/figures of the paper).
``run``
    Run one or more experiments and print their ASCII tables.
``export``
    Run experiments and write their tables to CSV/JSON files.
``report``
    Run every experiment and write one Markdown reproduction report.
``demo``
    A short end-to-end Clover run with a summary report.
``fleet``
    Route one global workload across multiple regions and print the
    aggregated fleet report (per-region and global carbon/accuracy/SLA).
    ``--demand diurnal`` switches the run to geo-diurnal per-origin
    demand with session-drain inertia and per-(origin, region) SLA
    charging; ``--lookahead-h`` tunes the forecast-aware router;
    ``--gating reactive|forecast`` turns on elastic GPU capacity so idle
    power follows traffic (``repro run gating`` prints the side-by-side
    always-on vs reactive vs pre-wake comparison); ``--devices`` assigns
    GPU generations per region (``us-ciso=a100,apac-solar=l4`` — mixed
    pools via ``a100:1+l4:1``), making the carbon-greedy/forecast-aware
    routers rank on effective gCO2/request, and ``--intensity-only``
    ablates that back to the raw-intensity ranking (``repro run hetero``
    prints the side-by-side comparison).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.experiments import EXPERIMENT_REGISTRY
from repro.analysis.runner import ExperimentRunner
from repro.analysis.reporting import render

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="clover-repro",
        description=(
            "Reproduction of Clover (SC '23): carbon-aware ML inference "
            "serving with mixed-quality models and MIG GPU partitioning."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run experiments and print their tables")
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(EXPERIMENT_REGISTRY))}, or 'all'",
    )
    run.add_argument(
        "--fidelity",
        default="default",
        choices=("smoke", "default", "paper"),
        help="simulation fidelity (default: %(default)s)",
    )
    run.add_argument("--seed", type=int, default=0, help="root RNG seed")

    export = sub.add_parser(
        "export", help="run experiments and write CSV/JSON tables"
    )
    export.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    export.add_argument("--out", default=".", help="output directory")
    export.add_argument(
        "--format", default="csv", choices=("csv", "json"), dest="fmt"
    )
    export.add_argument(
        "--fidelity", default="default", choices=("smoke", "default", "paper")
    )
    export.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report", help="write a full Markdown reproduction report"
    )
    report.add_argument("--out", default="REPORT.md")
    report.add_argument(
        "--fidelity", default="default", choices=("smoke", "default", "paper")
    )
    report.add_argument("--seed", type=int, default=0)

    demo = sub.add_parser("demo", help="short end-to-end Clover run")
    demo.add_argument("--application", default="classification")
    demo.add_argument("--scheme", default="clover")
    demo.add_argument("--hours", type=float, default=12.0)
    demo.add_argument("--seed", type=int, default=0)

    from repro.fleet.regions import REGION_NAMES
    from repro.fleet.routing import ROUTER_NAMES

    fleet = sub.add_parser(
        "fleet", help="multi-region run with carbon-aware routing"
    )
    fleet.add_argument(
        "--regions",
        default="us-ciso,uk-eso,nordic-hydro",
        help=(
            "comma-separated region names "
            f"(valid: {', '.join(REGION_NAMES)}; default: %(default)s)"
        ),
    )
    fleet.add_argument(
        "--router",
        default="carbon-greedy",
        choices=ROUTER_NAMES,
        help="traffic-splitting policy (default: %(default)s)",
    )
    fleet.add_argument(
        "--duration-h",
        type=float,
        default=24.0,
        help="simulated hours (default: %(default)s)",
    )
    fleet.add_argument("--application", default="classification")
    fleet.add_argument("--scheme", default="clover")
    fleet.add_argument("--n-gpus", type=int, default=4, dest="n_gpus")
    from repro.gpu.profiles import DEVICE_NAMES

    fleet.add_argument(
        "--devices",
        default=None,
        help=(
            "GPU generations per region: one spec for every region "
            "('l4'), or comma-separated region=spec pairs "
            "('us-ciso=a100,uk-eso=l4'); a spec mixes devices within a "
            "region with '+' ('a100:1+l4:1', counts must total --n-gpus). "
            f"Known devices: {', '.join(DEVICE_NAMES)}.  Default: every "
            "GPU an a100"
        ),
    )
    fleet.add_argument(
        "--intensity-only",
        action="store_true",
        dest="intensity_only",
        help=(
            "rank regions on raw grid intensity instead of effective "
            "gCO2/request (the pre-heterogeneity carbon-greedy/"
            "forecast-aware behaviour; identical on all-a100 fleets)"
        ),
    )
    fleet.add_argument(
        "--fidelity", default="smoke", choices=("smoke", "default", "paper")
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--demand",
        default=None,
        choices=("constant", "diurnal"),
        help="geo-origin demand model (default: constant global rate)",
    )
    fleet.add_argument(
        "--ramp-share-per-h",
        type=float,
        default=None,
        dest="ramp_share_per_h",
        help="max share a region may gain per hour (default: unlimited)",
    )
    fleet.add_argument(
        "--drain-share-per-h",
        type=float,
        default=None,
        dest="drain_share_per_h",
        help="fraction of resident sessions drainable per hour "
        "(default: unlimited)",
    )
    fleet.add_argument(
        "--lookahead-h",
        type=float,
        default=None,
        dest="lookahead_h",
        help="forecast-aware router horizon in hours",
    )
    from repro.fleet.capacity import GATING_MODES

    fleet.add_argument(
        "--gating",
        default=None,
        choices=GATING_MODES,
        help=(
            "elastic GPU capacity: sleep GPUs when the routed rate falls "
            "(reactive wakes pay a latency window; forecast pre-wakes from "
            "the router's lookahead).  Default: every GPU always on"
        ),
    )
    fleet.add_argument(
        "--wake-energy-j",
        type=float,
        default=None,
        dest="wake_energy_j",
        help=(
            "per-wake transition energy for --gating (J).  The default "
            "(2000 J) is sized for A100s; fleets with leaner devices need "
            "a tighter bound — e.g. 1000 J fits an L4, whose static draw "
            "over the wake window caps the admissible wake energy"
        ),
    )
    return parser


def _cmd_list() -> int:
    for name in sorted(EXPERIMENT_REGISTRY):
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(EXPERIMENT_REGISTRY)
    unknown = [n for n in names if n not in EXPERIMENT_REGISTRY]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(EXPERIMENT_REGISTRY))}",
            file=sys.stderr,
        )
        return 2
    runner = ExperimentRunner()
    for name in names:
        t0 = time.perf_counter()
        result = EXPERIMENT_REGISTRY[name](runner, args.fidelity, args.seed)
        dt = time.perf_counter() - t0
        print(render(result, title=f"== {name} ({args.fidelity}, {dt:.1f}s) =="))
        print()
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.export import table_to_csv, table_to_json

    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(EXPERIMENT_REGISTRY)
    unknown = [n for n in names if n not in EXPERIMENT_REGISTRY]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(EXPERIMENT_REGISTRY))}",
            file=sys.stderr,
        )
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    runner = ExperimentRunner()
    writer = table_to_csv if args.fmt == "csv" else table_to_json
    for name in names:
        result = EXPERIMENT_REGISTRY[name](runner, args.fidelity, args.seed)
        path = out_dir / f"{name}.{args.fmt}"
        writer(result, path)
        print(f"wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    generate_report(fidelity=args.fidelity, seed=args.seed, out_path=args.out)
    print(f"wrote {args.out}")
    return 0


def _parse_fleet_devices(arg: str | None, region_names: list[str]):
    """``--devices`` → per-region device assignment for region_by_name.

    Returns a dict region -> (str | tuple) device spec; regions absent
    from the mapping keep the implicit all-A100 fleet.  A bare spec (no
    ``=``) applies to every region; within-region mixes join device
    counts with ``+`` (``a100:1+l4:1``).  ``region_names`` must already
    be lowercased (the registry is case-insensitive).
    """
    from repro.gpu.profiles import parse_region_devices

    if arg is None:
        return {}

    def one(spec: str):
        return parse_region_devices(spec.replace("+", ","))

    if "=" not in arg:
        spec = one(arg)
        return {region: spec for region in region_names}
    out = {}
    for token in arg.split(","):
        token = token.strip()
        if not token:
            continue
        region, sep, spec = token.partition("=")
        if not sep:
            raise ValueError(
                f"mixing bare and region=spec device tokens ({token!r}); "
                "either give one spec for all regions or map every region"
            )
        region = region.strip().lower()
        if region not in region_names:
            raise ValueError(
                f"--devices names unknown region {region!r} "
                f"(fleet: {', '.join(region_names)})"
            )
        out[region] = one(spec.strip())
    return out


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.fleet import FleetCoordinator, region_by_name
    from repro.fleet.routing import make_router

    # The registry is case-insensitive; normalize once so --devices
    # region=spec tokens match however --regions was spelled.
    names = [n.strip().lower() for n in args.regions.split(",") if n.strip()]
    if not names:
        print("no regions given", file=sys.stderr)
        return 2
    try:
        devices = _parse_fleet_devices(args.devices, names)
        regions = tuple(
            region_by_name(n, n_gpus=args.n_gpus, devices=devices.get(n))
            for n in names
        )
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    router = args.router
    if args.intensity_only:
        if router not in ("carbon-greedy", "forecast-aware"):
            print(
                f"--intensity-only applies to carbon-greedy/forecast-aware "
                f"routers, not {router!r}",
                file=sys.stderr,
            )
            return 2
        router = make_router(router, efficiency_weighted=False)
    gating = args.gating
    if gating is not None and args.wake_energy_j is not None:
        from repro.fleet import make_gating_policy

        gating = make_gating_policy(gating, wake_energy_j=args.wake_energy_j)
    try:
        fleet = FleetCoordinator.create(
            regions,
            application=args.application,
            scheme=args.scheme,
            router=router,
            fidelity=args.fidelity,
            seed=args.seed,
            demand=args.demand,
            ramp_share_per_h=args.ramp_share_per_h,
            drain_share_per_h=args.drain_share_per_h,
            lookahead_h=args.lookahead_h,
            gating=gating,
        )
        t0 = time.perf_counter()
        report = fleet.run(duration_h=args.duration_h)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    dt = time.perf_counter() - t0
    headers, rows = report.table()
    print(
        format_table(
            headers,
            rows,
            title=(
                f"== fleet: {len(regions)} regions, router={report.router_name}, "
                f"scheme={report.scheme_name} ({args.fidelity}, {dt:.1f}s) =="
            ),
        )
    )
    print()
    if any(r.devices is not None for r in report.regions):
        mixes = ", ".join(
            f"{r.name}={r.device_pool().describe()}" for r in report.regions
        )
        print(f"  devices:         {mixes}")
    print(f"  duration:        {report.duration_h:.1f} h")
    print(f"  global rate:     {report.global_rate_per_s:.1f} req/s")
    print(f"  requests served: {report.total_requests:,.0f}")
    print(f"  energy:          {report.total_energy_j / 3.6e6:.2f} kWh")
    print(f"  carbon:          {report.total_carbon_g:,.0f} gCO2")
    print(f"  accuracy loss:   {report.accuracy_loss_pct:.2f}%")
    print(f"  SLA attainment:  {100 * report.sla_attainment:.1f}% (incl. network)")
    cache = report.cache_stats
    print(
        f"  evaluator cache: {cache.hits:,} hits / {cache.misses:,} misses "
        f"({100 * cache.hit_rate:.1f}% hit rate)"
    )
    if report.has_gating:
        print(
            f"  gating:          {report.gating_name} "
            f"({100 * report.mean_awake_fraction:.1f}% of GPUs awake on average)"
        )
    if report.has_demand:
        print(
            f"  user SLA:        {100 * report.user_sla_attainment:.1f}% "
            "(charged per origin-region pair)"
        )
        print(f"  mean net hop:    {report.mean_net_latency_ms:.1f} ms")
        print()
        headers, rows = report.origin_table()
        print(format_table(headers, rows, title="-- demand origins --"))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.service import CarbonAwareInferenceService

    service = CarbonAwareInferenceService.create(
        application=args.application,
        scheme=args.scheme,
        fidelity="smoke",
        seed=args.seed,
    )
    report = service.run(duration_h=args.hours)
    print(f"scheme={report.scheme_name} application={report.application}")
    print(f"  duration:          {report.duration_h:.1f} h")
    print(f"  requests served:   {report.total_requests:,.0f}")
    print(f"  energy:            {report.total_energy_j / 3.6e6:.2f} kWh")
    print(f"  carbon:            {report.total_carbon_g:,.0f} gCO2")
    print(f"  mean accuracy:     {report.mean_accuracy:.2f} "
          f"(loss {report.accuracy_loss_pct:.2f}%)")
    print(f"  p95 latency:       {report.p95_ms:.1f} ms "
          f"(SLA {report.sla_target_ms:.1f} ms)")
    print(f"  optimization time: {100 * report.optimization_fraction:.2f}% "
          f"({len(report.invocations)} invocations, "
          f"{report.total_evaluations} evaluations)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
