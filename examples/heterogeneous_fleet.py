#!/usr/bin/env python
"""Heterogeneous GPU fleets: routing by gCO2/request, a walkthrough.

Every earlier example models identical A100s everywhere, so carbon per
request differs between regions only through the grid.  Real fleets mix
GPU generations — and carbon per request is grid intensity *times*
joules per request, which now depends on the silicon serving it.  This
example provisions the dirty APAC grid with low-power L4 inference cards
(no MIG, ~0.4x an A100's throughput, a fraction of its watts) while the
other regions keep MIG-capable A100s, then routes the same diurnal
workload three ways:

* **static** — the capacity-proportional geo-DNS split; device- and
  carbon-blind,
* **intensity-only greedy** — the pre-heterogeneity carbon-greedy:
  cleanest *grid* first.  Its blind spot is silicon: a clean grid running
  hungry devices still looks attractive,
* **efficiency-aware greedy** — cheapest *carbon per request* first:
  each region's intensity is multiplied by the marginal joules/request
  of its deployed configuration on its own devices (static draw included
  once power-gating makes idle watts follow traffic).

On an all-A100 fleet the last two are identical by construction; every
gram the efficiency ranking saves here is bought by pricing the device.

    python examples/heterogeneous_fleet.py
    python examples/heterogeneous_fleet.py --duration-h 24 --seed 1
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.fleet import FleetCoordinator, make_gating_policy, region_by_name
from repro.fleet.routing import make_router

#: (region, device) provisioning: cheap efficient silicon on the dirty
#: grid, MIG-capable A100s elsewhere.
FLEET = (("us-ciso", "a100"), ("uk-eso", "a100"), ("apac-solar", "l4"))

#: Per-wake transition energy sized for the smallest device in the fleet
#: (the A100 default of 2 kJ would exceed an L4's static draw over the
#: wake window, which the coordinator rejects).
WAKE_ENERGY_J = 1000.0


def run_fleet(args, efficiency_weighted: bool = True, router: str = "carbon-greedy"):
    regions = tuple(
        region_by_name(name, n_gpus=args.n_gpus, devices=device)
        for name, device in FLEET
    )
    fleet = FleetCoordinator.create(
        regions,
        application=args.application,
        scheme="clover",
        router=(
            make_router(router, efficiency_weighted=efficiency_weighted)
            if router != "static"
            else "static"
        ),
        fidelity="smoke",
        seed=args.seed,
        demand="diurnal",
        ramp_share_per_h=0.10,
        drain_share_per_h=0.20,
        gating=make_gating_policy("reactive", wake_energy_j=WAKE_ENERGY_J),
    )
    return fleet.run(duration_h=args.duration_h)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--application", default="classification")
    parser.add_argument("--duration-h", type=float, default=48.0)
    parser.add_argument("--n-gpus", type=int, default=2, dest="n_gpus")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    runs = {
        "static": run_fleet(args, router="static"),
        "intensity-only greedy": run_fleet(args, efficiency_weighted=False),
        "efficiency-aware greedy": run_fleet(args, efficiency_weighted=True),
    }

    headers = ("Run", "Carbon(g)", "Energy(kWh)", "AwakeGPU%", "UserSLA%")
    rows = [
        (
            label,
            f"{r.total_carbon_g:,.0f}",
            f"{r.total_energy_j / 3.6e6:.2f}",
            f"{100 * r.mean_awake_fraction:.1f}",
            f"{100 * r.user_sla_attainment:.2f}",
        )
        for label, r in runs.items()
    ]
    mixes = ", ".join(f"{name}={dev}" for name, dev in FLEET)
    print(format_table(headers, rows, title=f"-- heterogeneous fleet ({mixes}) --"))
    print()

    intensity = runs["intensity-only greedy"].total_carbon_g
    efficiency = runs["efficiency-aware greedy"].total_carbon_g
    gain = (1.0 - efficiency / intensity) * 100.0
    print(f"pricing the silicon into the ranking saves {gain:.2f}% fleet carbon")
    print("over the intensity-only ranking on the identical fleet.")
    print()
    print("Reading the table: both greedy routers drain the dirty APAC grid,")
    print("but the intensity ranking treats the remaining regions as equal")
    print("whenever their grids are equal.  The efficiency ranking also sees")
    print("the devices: it knows a MIG-partitioned A100 serving small")
    print("variants is leaner than the L4 spec sheet suggests, and it knows")
    print("an awake L4 amortizes its static draw over 0.4x the capacity —")
    print("so it concentrates load where joules (not just grams per kWh)")
    print("are cheapest, and gates what that frees up.")


if __name__ == "__main__":
    main()
