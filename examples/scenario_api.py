#!/usr/bin/env python
"""The ScenarioSpec API: one declarative front door, a walkthrough.

Every earlier example assembles its fleet by hand — registry lookups,
router construction, gating policies, one bespoke loop per comparison.
This example does the same work declaratively: a **ScenarioSpec** is the
entire experiment as one composable value (topology, per-region devices
*and schemes*, demand, routing, gating, fidelity, seed), and everything
else is generic machinery:

* ``Scenario(spec).run()`` executes one spec,
* ``spec.override("routing.router", ...)`` / ``expand`` derive variants,
* ``run_sweep(grid, workers=N)`` fans a grid out over a process pool,
* ``spec_to_toml`` round-trips the spec to the same files
  ``clover-repro run`` / ``clover-repro sweep`` consume
  (see ``examples/scenarios/``).

The comparison itself reproduces the mixed-scheme headline: running the
accuracy-indifferent CO2OPT optimizer in the clean hydro region and
CLOVER on the dirty grids reaches a carbon/accuracy trade-off point
neither uniform fleet can.

    python examples/scenario_api.py
    python examples/scenario_api.py --duration-h 24 --workers 2
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.scenarios import (
    RegionSpec,
    RoutingSpec,
    Scenario,
    ScenarioSpec,
    expand,
    run_sweep,
    spec_to_toml,
)


def base_spec(duration_h: float, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="mixed-scheme-walkthrough",
        regions=(
            RegionSpec(name="nordic-hydro", scheme="co2opt"),  # clean grid
            RegionSpec(name="us-ciso"),
            RegionSpec(name="uk-eso"),
        ),
        scheme="clover",
        fidelity="smoke",
        seed=seed,
        n_gpus=2,
        duration_h=duration_h,
        routing=RoutingSpec(router="carbon-greedy"),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration-h", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=2,
        help="process-pool width for the sweep (1 = serial)",
    )
    args = parser.parse_args()

    mixed = base_spec(args.duration_h, args.seed)
    print("The spec as the TOML file `clover-repro run` would consume:\n")
    print(spec_to_toml(mixed))

    # One declarative line per fleet variant: the uniform baselines are
    # the same spec with the per-region override dropped.
    uniform_clover = ScenarioSpec(
        regions=tuple(RegionSpec(name=r.name) for r in mixed.regions),
        **{
            k: getattr(mixed, k)
            for k in (
                "scheme", "fidelity", "seed", "n_gpus", "duration_h", "routing"
            )
        },
    )
    uniform_co2opt = uniform_clover.override("scheme", "co2opt")

    rows = []
    for label, spec in (
        ("uniform clover", uniform_clover),
        ("mixed co2opt+clover", mixed),
        ("uniform co2opt", uniform_co2opt),
    ):
        result = Scenario(spec).run()
        rows.append(
            (
                label,
                result.scheme_name,
                f"{result.total_carbon_g:,.0f}",
                f"{result.accuracy_loss_pct:.2f}",
                f"{100 * result.sla_attainment:.1f}",
            )
        )
    print(
        format_table(
            ("Fleet", "Schemes", "Carbon(g)", "AccLoss%", "SLA%"),
            rows,
            title="-- per-region schemes: the trade-off sandwich --",
        )
    )

    # Sweep the router axis over the mixed fleet, optionally in parallel.
    grid = expand(mixed, {"routing.router": ["static", "carbon-greedy"]})
    results = run_sweep(grid, workers=args.workers)
    print()
    print(
        format_table(
            ("Router", "Carbon(g)", "AccLoss%"),
            [
                (
                    spec.routing.router,
                    f"{result.total_carbon_g:,.0f}",
                    f"{result.accuracy_loss_pct:.2f}",
                )
                for spec, result in zip(grid, results)
            ],
            title=(
                f"-- router sweep ({len(grid)} scenarios, "
                f"{args.workers} worker(s)) --"
            ),
        )
    )


if __name__ == "__main__":
    main()
