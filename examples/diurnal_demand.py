#!/usr/bin/env python
"""Geo-diurnal demand: forecast-driven proactive routing, a walkthrough.

The multi-region example (``multi_region_fleet.py``) routes one *constant*
global workload.  Real demand has a geography and a clock: Asia wakes up
~14 fleet-hours before North America, and every grid's solar trough tracks
its own local noon.  This example runs that world:

* three demand origins (NA/EU/APAC) with population weights and
  sinusoidal day curves in their local time (:mod:`repro.demand`),
* three grids whose duck curves are phase-shifted by geography —
  ``apac-solar``'s trough leads the fleet clock by 8 hours,
* an origin→region latency matrix charging the SLA per (origin,
  serving-region) pair,
* session inertia: a region *admits* traffic quickly but resident
  sessions only drain at a bounded rate — entering a briefly-clean grid
  is a commitment,
* the ``forecast-aware`` router, which ranks regions on the predicted
  mean intensity of the coming lookahead window (Diurnal climatology
  forecaster) with a regret guard that falls back toward myopic greedy
  when its forecasts go bad.

    python examples/diurnal_demand.py
    python examples/diurnal_demand.py --lookahead-h 8 --duration-h 24
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.fleet import FleetCoordinator, region_by_name

#: Small clusters + smoke fidelity keep the example interactive (~seconds).
EXAMPLE_GPUS = 2
DEMAND_REGIONS = ("us-ciso", "uk-eso", "apac-solar")


def run_fleet(router: str, args, lookahead_h: float | None = None):
    regions = tuple(
        region_by_name(n, n_gpus=args.n_gpus) for n in DEMAND_REGIONS
    )
    fleet = FleetCoordinator.create(
        regions,
        application=args.application,
        scheme="clover",
        router=router,
        fidelity="smoke",
        seed=args.seed,
        demand="diurnal",
        ramp_share_per_h=args.ramp_share_per_h,
        drain_share_per_h=args.drain_share_per_h,
        lookahead_h=lookahead_h,
    )
    return fleet.run(duration_h=args.duration_h)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--application", default="classification")
    parser.add_argument("--duration-h", type=float, default=48.0)
    parser.add_argument("--lookahead-h", type=float, default=6.0,
                        dest="lookahead_h")
    parser.add_argument("--ramp-share-per-h", type=float, default=0.10,
                        dest="ramp_share_per_h")
    parser.add_argument("--drain-share-per-h", type=float, default=0.20,
                        dest="drain_share_per_h")
    parser.add_argument("--n-gpus", type=int, default=EXAMPLE_GPUS,
                        dest="n_gpus")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    runs = {
        "static": run_fleet("static", args),
        "carbon-greedy": run_fleet("carbon-greedy", args),
        "forecast-aware": run_fleet(
            "forecast-aware", args, lookahead_h=args.lookahead_h
        ),
    }

    for label, report in runs.items():
        headers, rows = report.table()
        print(format_table(headers, rows, title=f"-- router: {label} --"))
        print()

    headers, rows = runs["forecast-aware"].origin_table()
    print(format_table(headers, rows, title="-- who served whom (forecast-aware) --"))
    print()

    static = runs["static"]
    for label in ("carbon-greedy", "forecast-aware"):
        r = runs[label]
        save = (1.0 - r.total_carbon_g / static.total_carbon_g) * 100.0
        print(
            f"{label:15s} carbon {r.total_carbon_g:8,.0f} g "
            f"({save:+.2f}% vs static) | user SLA "
            f"{100 * r.user_sla_attainment:.2f}% vs "
            f"{100 * static.user_sla_attainment:.2f}% | mean hop "
            f"{r.mean_net_latency_ms:.1f} ms vs "
            f"{static.mean_net_latency_ms:.1f} ms"
        )
    print()
    print("Reading the tables: the static geo-DNS split serves every origin")
    print("a third everywhere and eats APAC's coal evenings; the carbon")
    print("routers drain APAC to its resident floor and split its users")
    print("between home (cheap hop, dirty grid) and NA (55 ms, cleaner).")
    print("The forecast-aware router makes the same moves *earlier*: with")
    print("drain-limited sessions, leaving a trough late is the expensive")
    print("mistake, and the lookahead window prices the exit in advance.")


if __name__ == "__main__":
    main()
