#!/usr/bin/env python
"""Compare all five serving schemes over the 48-hour CISO March trace.

Reproduces the paper's headline comparison (Figs. 9-10) as a single table:
BASE (carbon-unaware), CO2OPT (static carbon-optimal), BLOVER (raw-space
random search), CLOVER (graph-space SA) and ORACLE (exhaustive offline).

    python examples/scheme_comparison.py [--application classification]
"""

from __future__ import annotations

import argparse
import time

from repro import CarbonAwareInferenceService
from repro.analysis.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--application", default="classification")
    parser.add_argument("--hours", type=float, default=48.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fidelity", default="default", choices=("smoke", "default", "paper")
    )
    args = parser.parse_args()

    results = {}
    for scheme in ("base", "co2opt", "blover", "clover", "oracle"):
        t0 = time.perf_counter()
        service = CarbonAwareInferenceService.create(
            application=args.application,
            scheme=scheme,
            fidelity=args.fidelity,
            seed=args.seed,
        )
        results[scheme] = service.run(duration_h=args.hours)
        print(f"ran {scheme:8s} in {time.perf_counter() - t0:5.1f}s")

    base = results["base"]
    rows = []
    for scheme, r in results.items():
        saving = (1.0 - r.total_carbon_g / base.total_carbon_g) * 100.0
        rows.append(
            (
                scheme.upper(),
                f"{r.total_carbon_g / 1e3:.2f}",
                f"{saving:5.1f}",
                f"{r.accuracy_loss_pct:.2f}",
                f"{r.p95_ms / base.p95_ms:.2f}",
                f"{100 * r.optimization_fraction:.2f}",
                str(r.total_evaluations),
            )
        )
    print()
    print(
        format_table(
            (
                "Scheme", "Carbon(kg)", "Save%", "AccLoss%",
                "p95/BASE", "OptTime%", "Evals",
            ),
            rows,
            title=(
                f"{args.hours:.0f}h of {args.application} on 10xA100, "
                "US CISO March trace"
            ),
        )
    )
    print()
    print("Expected shape (paper Sec. 5.2): CO2OPT saves the most carbon at")
    print("the worst accuracy; CLOVER lands within a few points of ORACLE at")
    print("far better accuracy than CO2OPT; BLOVER trails CLOVER on both")
    print("carbon and optimization overhead.")


if __name__ == "__main__":
    main()
