#!/usr/bin/env python
"""Temporal load shifting: deferrable batch work, a walkthrough.

Every earlier example serves one workload class: interactive requests
that must be answered the epoch they arrive — the only carbon lever is
*where* they run.  This example adds the second class from ISSUE-10: a
**deferrable batch job** (think nightly re-scoring lots) that only has
to finish within a deadline.  The temporal scheduler holds each lot
until the carbon forecast says the window is clean — or the deadline
forces it — and places it into the fleet's *leftover* capacity, never
displacing interactive traffic.  Three runs side by side:

* **admit-on-arrival** — the batch is served the epoch it lands
  (``batch.defer = false``); spatial routing still picks the cleanest
  region, but the *when* is fixed,
* **deferred** — the scheduler shifts lots into forecast-clean windows
  within their deadline; fleet carbon drops at the same 100% deadline
  attainment,
* **deferred + gating** — the interplay: reactive gating sleeps GPUs
  through demand valleys, and the scheduler's hold hints keep them
  awake exactly where the backlog needs the clean window.

    python examples/load_shifting.py
    python examples/load_shifting.py --duration-h 24 --jobs-per-h 600
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.scenarios import (
    BatchSpec,
    DemandSpec,
    GatingSpec,
    RegionSpec,
    RoutingSpec,
    Scenario,
    ScenarioSpec,
)

#: Small clusters + smoke fidelity keep the example interactive (~seconds).
EXAMPLE_GPUS = 2
REGIONS = ("nordic-hydro", "us-ciso")


def base_spec(args: argparse.Namespace) -> ScenarioSpec:
    return ScenarioSpec(
        name="load-shifting-walkthrough",
        regions=tuple(RegionSpec(name=n) for n in REGIONS),
        application=args.application,
        scheme="clover",
        fidelity="smoke",
        seed=args.seed,
        n_gpus=args.n_gpus,
        duration_h=args.duration_h,
        routing=RoutingSpec(router="carbon-greedy"),
        demand=DemandSpec(
            kind="diurnal", ramp_share_per_h=0.10, drain_share_per_h=0.20
        ),
        batch=BatchSpec(
            jobs_per_h=args.jobs_per_h,
            requests_per_job=100.0,
            deadline_h=args.deadline_h,
        ),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--application", default="classification")
    parser.add_argument("--duration-h", type=float, default=48.0)
    parser.add_argument("--jobs-per-h", type=float, default=432.0,
                        dest="jobs_per_h")
    parser.add_argument("--deadline-h", type=float, default=8.0,
                        dest="deadline_h")
    parser.add_argument("--n-gpus", type=int, default=EXAMPLE_GPUS,
                        dest="n_gpus")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spec = base_spec(args)
    runs = {
        "admit-on-arrival": Scenario(
            spec.override("batch.defer", False)
        ).run(),
        "deferred": Scenario(spec).run(),
        "deferred+gating": Scenario(
            spec.override("gating.mode", "reactive")
        ).run(),
    }

    headers = (
        "Run", "Carbon(g)", "SLA%", "BatchReq", "OnTime%", "Shift(h)",
        "Awake%",
    )
    rows = []
    for label, r in runs.items():
        att = r.batch_deadline_attainment
        rows.append(
            (
                label,
                f"{r.total_carbon_g:,.0f}",
                f"{100 * r.sla_attainment:.1f}",
                f"{r.batch_completed_requests:,.0f}",
                f"{100 * att:.1f}" if att == att else "-",
                f"{r.mean_shift_h:.2f}",
                f"{100 * r.mean_awake_fraction:.1f}",
            )
        )
    print(format_table(headers, rows, title="-- temporal load shifting --"))
    print()

    arrival = runs["admit-on-arrival"].total_carbon_g
    deferred = runs["deferred"].total_carbon_g
    saving = (1.0 - deferred / arrival) * 100.0
    print(f"deferring the same batch saves {saving:.2f}% fleet carbon")
    print("without missing a deadline or an interactive SLA target.")
    print()

    # Where did the work move?  Requests by hours-shifted-from-arrival.
    edges, counts = runs["deferred"].shift_histogram(bin_h=1.0)
    peak = max(float(counts.max()), 1.0)
    print("deferred run, shift histogram (requests by hours deferred):")
    for lo, hi, count in zip(edges[:-1], edges[1:], counts):
        bar = "#" * max(1 if count else 0, round(40 * float(count) / peak))
        print(f"  {lo:4.1f}-{hi:4.1f} h  {bar:<40s}  {count:>12,.0f}")
    print()
    print("Reading the table: admit-on-arrival takes whatever the grid")
    print("looks like when a lot lands; the scheduler instead piles work")
    print("into the forecast-clean windows (the histogram's late bins are")
    print("deadline-forced admissions).  With gating on, hold hints keep")
    print("GPUs awake through the clean valleys the policy would sleep.")


if __name__ == "__main__":
    main()
