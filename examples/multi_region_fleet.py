#!/usr/bin/env python
"""Carbon-aware geographic routing: a 3-region fleet walkthrough.

The single-cluster Clover service (see ``quickstart.py``) adapts *what* it
serves to the local grid; a fleet also chooses *where*.  This example runs
one global workload across three regions —

* ``us-ciso``      — California: dirty on average, deep midday solar dip,
* ``uk-eso``       — Britain: wind-dominated, swings 200 gCO2/kWh in hours,
* ``nordic-hydro`` — Nordics: clean and flat, but further from users —

and compares the static capacity-proportional split against the
carbon-greedy router, which shifts request share toward whichever grid is
cleanest *right now*, bounded by each region's capacity headroom and an
SLA cap that charges the extra network latency.

    python examples/multi_region_fleet.py
    python examples/multi_region_fleet.py --router latency --duration-h 48
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.fleet import FleetCoordinator, default_fleet_regions

#: Small cluster + smoke fidelity keep the example interactive (~seconds).
EXAMPLE_GPUS = 2


def run_fleet(router: str, args) -> "FleetResult":
    fleet = FleetCoordinator.create(
        default_fleet_regions(n_gpus=args.n_gpus),
        application=args.application,
        scheme="clover",
        router=router,
        fidelity="smoke",
        seed=args.seed,
    )
    return fleet.run(duration_h=args.duration_h)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--application", default="classification")
    parser.add_argument("--router", default="carbon-greedy",
                        help="the challenger policy (default: %(default)s)")
    parser.add_argument("--duration-h", type=float, default=24.0)
    parser.add_argument("--n-gpus", type=int, default=EXAMPLE_GPUS,
                        dest="n_gpus")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    static = run_fleet("static", args)
    challenger = run_fleet(args.router, args)

    for label, report in (("static", static), (args.router, challenger)):
        headers, rows = report.table()
        print(format_table(headers, rows, title=f"-- router: {label} --"))
        print()

    save_pct = (
        1.0 - challenger.total_carbon_g / static.total_carbon_g
    ) * 100.0
    print(f"{args.router} vs static over {challenger.duration_h:.0f} h:")
    print(f"  carbon: {challenger.total_carbon_g:,.0f} g vs "
          f"{static.total_carbon_g:,.0f} g ({save_pct:+.2f}% saved)")
    print(f"  SLA attainment: {100 * challenger.sla_attainment:.1f}% vs "
          f"{100 * static.sla_attainment:.1f}% (incl. network latency)")
    shares = challenger.request_shares
    print("  request shares: "
          + ", ".join(f"{k}={100 * v:.1f}%" for k, v in shares.items()))
    print()
    print("The carbon-greedy router routes around each grid's dirty hours —")
    print("share drifts to the Nordic region except when California's solar")
    print("trough makes CISO briefly competitive.  The SLA cap (service p95")
    print("plus network latency) is what keeps the shift from overloading")
    print("the clean region: remove it and the carbon win costs you the SLA.")


if __name__ == "__main__":
    main()
