#!/usr/bin/env python
"""Quickstart: run a carbon-aware inference service for one simulated day.

Builds the paper's default setup — EfficientNet image classification on ten
MIG-capable A100s, Poisson traffic sized to 65% of BASE capacity, the US
CISO March carbon trace — and runs the Clover controller over it.

    python examples/quickstart.py [--scheme clover] [--hours 24]
"""

from __future__ import annotations

import argparse

from repro import CarbonAwareInferenceService


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scheme", default="clover",
        choices=("base", "co2opt", "blover", "clover", "oracle"),
    )
    parser.add_argument("--application", default="classification")
    parser.add_argument("--hours", type=float, default=24.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Building a {args.scheme!r} service for {args.application!r} ...")
    service = CarbonAwareInferenceService.create(
        application=args.application,
        scheme=args.scheme,
        fidelity="default",
        seed=args.seed,
    )
    print(f"  SLA (BASE p95):      {service.baseline.sla.p95_target_ms:.1f} ms")
    print(f"  baseline C:          {service.baseline.c_base_g_per_request:.2e} "
          f"gCO2/request at {service.baseline.ci_base:.0f} gCO2/kWh")
    print(f"  carbon trace:        {service.trace}")
    print()

    report = service.run(duration_h=args.hours)

    print(f"After {report.duration_h:.0f} simulated hours:")
    print(f"  requests served:     {report.total_requests:,.0f}")
    print(f"  energy:              {report.total_energy_j / 3.6e6:.2f} kWh")
    print(f"  carbon:              {report.total_carbon_g / 1e3:.2f} kg CO2 "
          f"({report.carbon_g_per_request:.2e} g/request)")
    print(f"  mean accuracy:       {report.mean_accuracy:.2f} "
          f"(-{report.accuracy_loss_pct:.2f}% vs best model)")
    print(f"  p95 latency:         {report.p95_ms:.1f} ms "
          f"(SLA {report.sla_target_ms:.1f} ms)")
    print(f"  SLA-violating load:  {100 * report.sla_violation_fraction:.1f}% "
          f"of requests")
    print(f"  optimization:        {len(report.invocations)} invocations, "
          f"{report.total_evaluations} configs evaluated, "
          f"{100 * report.optimization_fraction:.2f}% of wall time")

    if report.invocations:
        last = report.invocations[-1]
        print(f"  current deployment:  partitions {last.deployed_label}")


if __name__ == "__main__":
    main()
