#!/usr/bin/env python
"""Capacity planning: how few GPUs can serve the 10-GPU workload?

The paper's Fig. 15 observation as a planning tool: because Clover
partitions GPUs and mixes model variants, it can meet the same p95 SLA as
an unpartitioned BASE deployment with a fraction of the hardware — which
also avoids the *embodied* carbon of the machines you no longer buy.

    python examples/capacity_planning.py [--application language]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.service import CarbonAwareInferenceService, derive_baseline
from repro.models.perf import PerfModel
from repro.models.zoo import default_zoo
from repro.serving.workload import default_rate

FULL_FLEET = 10


def p95_norm(application, scheme, n_gpus, rate, baseline, base_p95, seed):
    service = CarbonAwareInferenceService.create(
        application=application,
        scheme=scheme,
        n_gpus=n_gpus,
        rate_per_s=rate,
        baseline=baseline,
        fidelity="default",
        seed=seed,
    )
    report = service.run(duration_h=12.0)
    if not np.isfinite(report.p95_ms):
        return float("inf")
    return report.p95_ms / base_p95


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--application", default="classification")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    zoo, perf = default_zoo(), PerfModel()
    fam = zoo.for_application(args.application)
    rate = default_rate(fam, perf, FULL_FLEET)
    baseline = derive_baseline(
        zoo, perf, fam.name, FULL_FLEET, rate,
        ci_base=220.0, des_requests=12000, seed=args.seed,
    )
    print(
        f"Workload: {rate:.0f} req/s of {args.application}; "
        f"SLA = {baseline.sla.p95_target_ms:.1f} ms "
        f"(p95 of {FULL_FLEET}-GPU BASE)\n"
    )

    base10 = p95_norm(
        args.application, "base", FULL_FLEET, rate, baseline,
        baseline.sla.p95_target_ms, args.seed,
    )
    rows = []
    min_feasible = None
    for n in (10, 8, 6, 4, 3, 2, 1):
        cells = [str(n)]
        for scheme in ("base", "clover"):
            norm = p95_norm(
                args.application, scheme, n, rate, baseline,
                baseline.sla.p95_target_ms, args.seed,
            )
            cells.append(">3" if norm > 3 else f"{norm:.2f}")
            if scheme == "clover" and norm <= 1.05:
                min_feasible = n
        rows.append(tuple(cells))

    print(
        format_table(
            ("GPUs", "BASE p95/SLA", "CLOVER p95/SLA"),
            rows,
            title="p95 latency relative to the 10-GPU SLA",
        )
    )
    print()
    if min_feasible is not None:
        saved = FULL_FLEET - min_feasible
        print(
            f"Clover meets the SLA with as few as {min_feasible} GPUs — "
            f"{saved} machines ({100 * saved / FULL_FLEET:.0f}%) of embodied "
            "carbon, cooling and capex avoided."
        )
    del base10


if __name__ == "__main__":
    main()
