#!/usr/bin/env python
"""Serve your own model family with Clover.

The paper evaluates YOLOv5 / ALBERT / EfficientNet, but nothing in the
system is specific to them: any family of quality variants with calibrated
(accuracy, latency, power, memory) profiles slots in.  This example
registers a speech-transcription family with four variants — the largest
of which does not fit a 1g MIG slice, exercising the OOM-edge rule — and
runs the full Clover loop on it.

    python examples/custom_family.py
"""

from __future__ import annotations

from repro.carbon.traces import ciso_march_48h
from repro.core.service import CarbonAwareInferenceService
from repro.models.families import ModelFamily
from repro.models.variants import ModelVariant
from repro.models.zoo import ModelZoo


def build_speech_family() -> ModelFamily:
    """A transcription family loosely shaped like Whisper-scale models."""
    return ModelFamily(
        name="transcriber",
        application="speech",
        dataset="LibriSpeech",
        architecture="Transcriber",
        metric="WER-inv",  # higher = better, like every metric in the zoo
        variants=(
            ModelVariant(
                ordinal=1, name="Transcriber-tiny", family="transcriber",
                params_millions=39.0, gflops=15.0, accuracy=88.0,
                memory_gb=1.1, fixed_latency_ms=3.0, compute_latency_ms=8.0,
                saturation=0.15, power_intensity=0.5,
            ),
            ModelVariant(
                ordinal=2, name="Transcriber-small", family="transcriber",
                params_millions=120.0, gflops=55.0, accuracy=91.5,
                memory_gb=1.9, fixed_latency_ms=3.5, compute_latency_ms=18.0,
                saturation=0.3, power_intensity=0.65,
            ),
            ModelVariant(
                ordinal=3, name="Transcriber-medium", family="transcriber",
                params_millions=400.0, gflops=180.0, accuracy=93.8,
                memory_gb=3.6, fixed_latency_ms=4.0, compute_latency_ms=45.0,
                saturation=0.5, power_intensity=0.8,
            ),
            ModelVariant(
                ordinal=4, name="Transcriber-large", family="transcriber",
                params_millions=900.0, gflops=420.0, accuracy=95.0,
                memory_gb=7.0,  # does not fit a 1g slice: OOM edge disabled
                fixed_latency_ms=5.0, compute_latency_ms=95.0,
                saturation=0.75, power_intensity=0.95,
            ),
        ),
    )


def main() -> None:
    zoo = ModelZoo()
    zoo.register(build_speech_family())

    service = CarbonAwareInferenceService.create(
        application="speech",
        scheme="clover",
        zoo=zoo,
        trace=ciso_march_48h(),
        fidelity="default",
        seed=0,
    )
    print(f"SLA from BASE (Transcriber-large on full GPUs): "
          f"{service.baseline.sla.p95_target_ms:.1f} ms")

    report = service.run(duration_h=24.0)
    print(f"\nAfter {report.duration_h:.0f} h of carbon-aware transcription:")
    print(f"  accuracy:  {report.mean_accuracy:.2f} "
          f"(-{report.accuracy_loss_pct:.2f}% vs Transcriber-large)")
    print(f"  carbon:    {report.total_carbon_g / 1e3:.2f} kg "
          f"({report.carbon_g_per_request:.2e} g/request)")
    print(f"  p95:       {report.p95_ms:.1f} ms "
          f"(SLA {report.sla_target_ms:.1f} ms)")
    print(f"  re-optimized {len(report.invocations)} times, "
          f"{report.total_evaluations} configurations evaluated")

    base = CarbonAwareInferenceService.create(
        application="speech", scheme="base", zoo=zoo,
        trace=ciso_march_48h(), fidelity="default", seed=0,
    ).run(duration_h=24.0)
    saving = (1 - report.total_carbon_g / base.total_carbon_g) * 100.0
    print(f"  carbon saving vs carbon-unaware BASE: {saving:.1f}%")


if __name__ == "__main__":
    main()
