#!/usr/bin/env python
"""Elastic GPU capacity: idle power that follows traffic, a walkthrough.

Every earlier example runs an *always-on* fleet: a region's GPUs draw
their idle power whether the router sends them traffic or not, so
draining a dirty region only saves the dynamic margin.  This example
turns on power-gating and walks the three regimes side by side:

* **always-on** — the PR-2 behaviour; the carbon-greedy-vs-static gap is
  the dynamic margin only (~4%),
* **reactive gating** — a per-region ``CapacityManager`` sleeps whole
  GPUs (hysteresis-guarded) when the routed rate falls and wakes them
  when demand returns; wakes happen *after* the shortfall is observed,
  so part of the epoch is served at yesterday's capacity — the wake
  latency is the real price of reactive scaling,
* **forecast pre-wake** — the forecast-aware router projects next
  epoch's split from its lookahead window and files pre-wakes, so the
  capacity is standing when the demand lands; its policy can afford
  deeper sleeps because a wrong sleep costs a pre-wake, not an SLA hit.

    python examples/elastic_capacity.py
    python examples/elastic_capacity.py --duration-h 24 --n-gpus 4
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.fleet import FleetCoordinator, region_by_name

#: Small clusters + smoke fidelity keep the example interactive (~seconds).
EXAMPLE_GPUS = 2
REGIONS = ("us-ciso", "uk-eso", "apac-solar")


def run_fleet(router: str, args, gating=None, lookahead_h=None):
    regions = tuple(region_by_name(n, n_gpus=args.n_gpus) for n in REGIONS)
    fleet = FleetCoordinator.create(
        regions,
        application=args.application,
        scheme="clover",
        router=router,
        fidelity="smoke",
        seed=args.seed,
        demand="diurnal",
        ramp_share_per_h=0.10,
        drain_share_per_h=0.20,
        lookahead_h=lookahead_h,
        gating=gating,
    )
    return fleet.run(duration_h=args.duration_h)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--application", default="classification")
    parser.add_argument("--duration-h", type=float, default=48.0)
    parser.add_argument("--lookahead-h", type=float, default=6.0,
                        dest="lookahead_h")
    parser.add_argument("--n-gpus", type=int, default=EXAMPLE_GPUS,
                        dest="n_gpus")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    runs = {
        "always-on static": run_fleet("static", args),
        "always-on greedy": run_fleet("carbon-greedy", args),
        "reactive greedy": run_fleet("carbon-greedy", args, gating="reactive"),
        "prewake forecast": run_fleet(
            "forecast-aware", args, gating="forecast",
            lookahead_h=args.lookahead_h,
        ),
    }

    headers = ("Run", "Carbon(g)", "Energy(kWh)", "AwakeGPU%", "UserSLA%")
    rows = [
        (
            label,
            f"{r.total_carbon_g:,.0f}",
            f"{r.total_energy_j / 3.6e6:.2f}",
            f"{100 * r.mean_awake_fraction:.1f}",
            f"{100 * r.user_sla_attainment:.2f}",
        )
        for label, r in runs.items()
    ]
    print(format_table(headers, rows, title="-- elastic capacity --"))
    print()

    static = runs["always-on static"].total_carbon_g
    on_gap = (1.0 - runs["always-on greedy"].total_carbon_g / static) * 100.0
    gated_gap = (1.0 - runs["reactive greedy"].total_carbon_g / static) * 100.0
    print(f"carbon-greedy saves {on_gap:.2f}% over static while always-on,")
    print(f"and {gated_gap:.2f}% once sleeping GPUs stop paying idle power.")
    print()
    print("Reading the table: the static split cannot gate anything — every")
    print("region keeps its third of the traffic, so no pool ever drains.")
    print("The carbon routers concentrate load on clean grids and the dirty")
    print("region's manager sleeps its spare GPUs; waking them back up is")
    print("the cost reactive routing pays when demand returns, which the")
    print("forecast-aware router avoids by pre-waking from its lookahead.")


if __name__ == "__main__":
    main()
