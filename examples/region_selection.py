#!/usr/bin/env python
"""Where (and when) is carbon-aware serving worth the most?

Runs the same Clover service against different regional grid profiles —
the paper's Fig. 16 robustness study turned into a placement question: the
absolute carbon saved depends on the grid's intensity level, while the
*relative* saving is robust across regions and seasons.

Also demonstrates the synthetic grid generator: a hypothetical
hydro-dominated region (low, flat intensity) shows where carbon-awareness
matters least.

    python examples/region_selection.py
"""

from __future__ import annotations

import argparse

from repro import CarbonAwareInferenceService
from repro.analysis.reporting import format_table
from repro.carbon.generator import GridProfile, generate_trace
from repro.carbon.traces import evaluation_traces


def run_pair(application, trace, seed):
    out = {}
    for scheme in ("base", "clover"):
        service = CarbonAwareInferenceService.create(
            application=application, scheme=scheme, trace=trace,
            fidelity="default", seed=seed,
        )
        out[scheme] = service.run()
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--application", default="classification")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    traces = dict(evaluation_traces())

    # A hypothetical hydro-dominated grid: low and almost flat.
    hydro = GridProfile(
        name="Hydro Valley (synthetic)",
        base=45.0, solar_depth=5.0, solar_center_h=12.0, solar_width_h=3.0,
        morning_peak=4.0, evening_peak=6.0, noise_std=3.0, noise_corr=0.8,
    )
    traces["hydro-valley"] = generate_trace(hydro, days=2.0, rng=args.seed)

    rows = []
    for key, trace in traces.items():
        results = run_pair(args.application, trace, args.seed)
        base, clover = results["base"], results["clover"]
        save_pct = (1 - clover.total_carbon_g / base.total_carbon_g) * 100.0
        save_abs = (base.total_carbon_g - clover.total_carbon_g) / 1e3
        rows.append(
            (
                trace.name,
                f"{trace.mean():.0f}",
                f"{save_pct:.1f}",
                f"{save_abs:.2f}",
                f"{clover.accuracy_loss_pct:.2f}",
                str(len(clover.invocations)),
            )
        )

    print(
        format_table(
            (
                "Region/season", "Mean ci", "Save%", "Saved kg/48h",
                "AccLoss%", "Re-optimizations",
            ),
            rows,
            title=f"Clover vs BASE for {args.application} across grids",
        )
    )
    print()
    print("The relative saving is robust across regions (the paper's Fig. 16),")
    print("but the absolute kilograms scale with the grid's carbon intensity —")
    print("carbon-aware serving buys the most on dirty, volatile grids.")


if __name__ == "__main__":
    main()
